//! Admission cap (`ServerConfig::max_conns`): connections past the cap
//! are answered `503 Service Unavailable` + `Retry-After` and closed,
//! in both serve modes, while admitted connections keep working.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hdsampler_model::FormInterface;
use hdsampler_server::{HttpServer, ServeMode, ServerConfig, ServerHandle};
use hdsampler_webform::LocalSite;
use hdsampler_workload::figure1_db;

fn capped(mode: ServeMode, max_conns: usize) -> ServerHandle {
    let db = figure1_db(2);
    let schema = Arc::new(db.schema().clone());
    let site = Arc::new(LocalSite::new(db, schema));
    HttpServer::serve(
        ServerConfig {
            mode,
            max_conns,
            ..ServerConfig::default()
        },
        site,
    )
    .expect("bind loopback")
}

/// Send one keep-alive GET and read exactly its response (headers plus
/// `Content-Length` body), leaving the connection open.
fn get_keep_alive(stream: &mut TcpStream, target: &str) -> String {
    let req = format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: keep-alive\r\n\r\n");
    stream.write_all(req.as_bytes()).expect("write request");
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    let (head_end, body_len) = loop {
        let n = stream.read(&mut tmp).expect("read response");
        assert!(n > 0, "server closed a keep-alive connection");
        buf.extend_from_slice(&tmp[..n]);
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&buf[..pos]).to_lowercase();
            let len = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length:"))
                .and_then(|v| v.trim().parse::<usize>().ok())
                .expect("content-length header");
            break (pos + 4, len);
        }
    };
    while buf.len() < head_end + body_len {
        let n = stream.read(&mut tmp).expect("read body");
        assert!(n > 0, "short body");
        buf.extend_from_slice(&tmp[..n]);
    }
    String::from_utf8_lossy(&buf).into_owned()
}

/// Read to EOF (the rejection path closes the connection).
fn read_to_close(stream: &mut TcpStream) -> String {
    let mut out = String::new();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.read_to_string(&mut out).expect("read to close");
    out
}

fn over_cap_gets_503(mode: ServeMode) {
    let server = capped(mode, 1);
    let addr = server.addr();

    // First connection: admitted, serves the landing page, stays open.
    let mut held = TcpStream::connect(addr).expect("dial held");
    let page = get_keep_alive(&mut held, "/");
    assert!(
        page.starts_with("HTTP/1.1 200"),
        "admitted conn serves: {page}"
    );

    // Second connection while the first is open: turned away.
    let mut extra = TcpStream::connect(addr).expect("dial extra");
    let _ = extra.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    let reply = read_to_close(&mut extra);
    assert!(
        reply.starts_with("HTTP/1.1 503"),
        "over-cap conn rejected: {reply}"
    );
    let lower = reply.to_lowercase();
    assert!(lower.contains("retry-after:"), "advertises retry: {reply}");

    // The held connection still works after the rejection.
    let again = get_keep_alive(&mut held, "/");
    assert!(
        again.starts_with("HTTP/1.1 200"),
        "held conn lives: {again}"
    );
    drop(held);

    let stats = server.shutdown();
    assert!(stats.admission_rejects >= 1, "rejects counted: {stats:?}");
}

#[cfg(target_os = "linux")]
#[test]
fn reactor_over_cap_connection_gets_503_retry_after() {
    over_cap_gets_503(ServeMode::Reactor);
}

#[test]
fn pool_over_cap_connection_gets_503_retry_after() {
    over_cap_gets_503(ServeMode::Pool);
}

#[test]
fn uncapped_default_admits_concurrent_connections() {
    let server = capped(ServeMode::Pool, 0);
    let addr = server.addr();
    let mut a = TcpStream::connect(addr).expect("dial a");
    let mut b = TcpStream::connect(addr).expect("dial b");
    assert!(get_keep_alive(&mut a, "/").starts_with("HTTP/1.1 200"));
    assert!(get_keep_alive(&mut b, "/").starts_with("HTTP/1.1 200"));
    drop((a, b));
    let stats = server.shutdown();
    assert_eq!(stats.admission_rejects, 0);
}
