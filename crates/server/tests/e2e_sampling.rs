//! End-to-end: the unmodified sampler stack walks a *served* site over
//! real loopback TCP and agrees with the in-process transport.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use hdsampler_core::{DirectExecutor, HdsSampler, Sampler, SamplerConfig};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::{FormInterface, Schema};
use hdsampler_server::{HttpServer, ServerConfig, ServerHandle};
use hdsampler_webform::{
    FleetConfig, HttpTransport, LocalSite, MultiSiteDriver, SiteTask, WebFormInterface,
};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn vehicles_db(seed: u64, budget: Option<u64>) -> HiddenDb {
    let mut cfg = DbConfig::no_counts().with_k(50);
    if let Some(b) = budget {
        cfg = cfg.with_budget(b);
    }
    WorkloadSpec::vehicles(VehiclesSpec::compact(600, seed), cfg).build()
}

fn serve(db: HiddenDb) -> (ServerHandle, Arc<Schema>, usize) {
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
    let handle = HttpServer::serve(ServerConfig::default(), site).expect("bind loopback");
    (handle, schema, k)
}

#[test]
fn sampling_over_loopback_tcp_matches_in_process() {
    // Two identical databases: one behind a real socket, one in-process.
    let (server, schema, k) = serve(vehicles_db(77, None));
    let remote_iface = WebFormInterface::new(
        HttpTransport::new(server.addr().to_string()),
        Arc::clone(&schema),
        k,
        false,
    );

    let local_db = vehicles_db(77, None);
    let local_iface = WebFormInterface::new(
        LocalSite::new(local_db, Arc::clone(&schema)),
        Arc::clone(&schema),
        k,
        false,
    );

    // The production stack: history cache over the scraped interface, a
    // mid-slider walker. With the same seed the walker's decisions depend
    // only on the responses, so the two transports must produce the same
    // sample *sequence* — a far stronger check than matching estimates.
    let run = |iface: &dyn FormInterface| {
        let cfg = SamplerConfig::seeded(2009).with_slider(0.5);
        let mut sampler =
            HdsSampler::new(hdsampler_core::CachingExecutor::new(iface), cfg).unwrap();
        let mut keys = Vec::new();
        for _ in 0..40 {
            keys.push(sampler.next_sample().unwrap().row.key);
        }
        (keys, sampler.stats())
    };

    let (remote_keys, remote_stats) = run(&remote_iface);
    let (local_keys, local_stats) = run(&local_iface);

    // Same seed, same responses ⇒ the walker makes identical decisions:
    // the sample *sequences* agree, not just their distributions.
    assert_eq!(remote_keys, local_keys, "seeded walks must be identical");
    assert_eq!(remote_stats, local_stats, "and so must every counter");

    let stats = server.shutdown();
    assert_eq!(stats.requests, remote_stats.queries_issued);
    assert_eq!(stats.responses_ok, stats.requests, "every probe served 200");
    assert!(
        stats.connections < stats.requests,
        "keep-alive must reuse connections: {} conns for {} requests",
        stats.connections,
        stats.requests
    );
}

#[test]
fn multi_site_driver_samples_live_servers() {
    // Two live servers, each its own data; the unmodified MultiSiteDriver
    // drives both over real TCP.
    let (s0, schema, k) = serve(vehicles_db(40, None));
    let (s1, _, _) = serve(vehicles_db(41, None));
    let mut tasks: Vec<SiteTask<HttpTransport>> = [&s0, &s1]
        .iter()
        .enumerate()
        .map(|(i, s)| {
            SiteTask::new(
                format!("live-{i}"),
                WebFormInterface::new(
                    HttpTransport::new(s.addr().to_string()),
                    Arc::clone(&schema),
                    k,
                    false,
                ),
            )
        })
        .collect();
    let driver = MultiSiteDriver::new(FleetConfig {
        walkers_per_site: 2,
        target_per_site: 15,
        seed: 5,
        ..FleetConfig::default()
    });
    let report = driver.run_concurrent(&mut tasks);
    assert_eq!(report.total_samples(), 30);
    for site in &report.sites {
        assert_eq!(site.stopped, hdsampler_core::StopReason::TargetReached);
        assert!(site.queries_issued > 0);
    }
    let st0 = s0.shutdown();
    let st1 = s1.shutdown();
    assert!(st0.requests > 0 && st1.requests > 0);
    assert!(
        st0.connections >= 2,
        "two walkers ride two real connections"
    );
}

#[test]
fn budget_exhaustion_round_trips_the_wire() {
    use hdsampler_core::{SamplingSession, StopReason};
    let (server, schema, k) = serve(vehicles_db(9, Some(25)));
    let iface = WebFormInterface::new(
        HttpTransport::new(server.addr().to_string()),
        Arc::clone(&schema),
        k,
        false,
    );
    let exec = DirectExecutor::new(&iface);
    let session = SamplingSession::new(10_000);
    let mut sampler = HdsSampler::new(&exec, SamplerConfig::seeded(1)).unwrap();
    let outcome = session.run(&mut sampler, |_| {});
    assert_eq!(
        outcome.reason,
        StopReason::BudgetExhausted,
        "the 429 must surface as the same stop reason as in-process"
    );
    server.shutdown();
}

#[test]
fn keep_alive_reuses_one_connection() {
    let (server, _, _) = serve(vehicles_db(3, None));
    let t = HttpTransport::new(server.addr().to_string());
    use hdsampler_webform::Transport as _;
    for _ in 0..8 {
        t.fetch("/search").unwrap();
    }
    assert_eq!(t.connections(), 1, "one thread, one connection");
    let stats = server.shutdown();
    assert_eq!(stats.requests, 8);
    assert_eq!(
        stats.connections, 1,
        "eight keep-alive requests must share one server-side connection"
    );
}

#[test]
fn chunked_pages_round_trip() {
    // k large enough that the root results page exceeds the chunk
    // threshold: the server answers chunked, the client reassembles.
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(600, 8),
        DbConfig::no_counts().with_k(400),
    )
    .build();
    let (server, schema, k) = serve(db);
    let t = HttpTransport::new(server.addr().to_string());
    use hdsampler_webform::Transport as _;
    let page = t.fetch("/search").unwrap();
    assert!(
        page.len() > 16 * 1024,
        "root page must exceed the chunk threshold ({} bytes)",
        page.len()
    );
    assert!(page.ends_with("</body></html>\n"), "body reassembled whole");

    // And it scrapes like any other page.
    let iface = WebFormInterface::new(t, Arc::clone(&schema), k, false);
    let resp = iface
        .execute(&hdsampler_model::ConjunctiveQuery::empty())
        .unwrap();
    assert!(resp.overflow);
    assert_eq!(resp.rows.len(), 400);
    server.shutdown();
}

#[test]
fn raw_socket_semantics() {
    // Split writes, pipelining, landing page, 404/400, and non-GET — the
    // wire-level behaviours a scraper's transport relies on.
    let (server, _, _) = serve(vehicles_db(2, None));
    let addr = server.addr();

    // Landing page at `/`.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut head = read_until_close_or(&mut s, "</html>");
    assert!(head.starts_with("HTTP/1.1 200"));
    assert!(head.contains("<form action=\"/search\""));

    // Byte-dribbled request: the server must wait for the terminator.
    let mut s = TcpStream::connect(addr).unwrap();
    for chunk in [
        &b"GET /sea"[..],
        b"rch?make=",
        b"Honda HTTP/1.1\r\n",
        b"Host: t\r\n\r\n",
    ] {
        s.write_all(chunk).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(10));
    }
    head = read_until_close_or(&mut s, "</html>");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");

    // Two pipelined requests on one connection answer FIFO.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(
        b"GET /nosuchpage HTTP/1.1\r\nHost: t\r\n\r\nGET /search?bogus=1 HTTP/1.1\r\nHost: t\r\n\r\n",
    )
    .unwrap();
    let both = read_until_close_or(&mut s, "400 bad request");
    let first = both
        .find("HTTP/1.1 404")
        .expect("first response is the 404");
    let second = both
        .find("HTTP/1.1 400")
        .expect("second response is the 400");
    assert!(first < second, "responses must arrive in request order");

    // Non-GET is 405 with Allow.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"DELETE /search HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let resp = read_until_close_or(&mut s, "405 method");
    assert!(resp.starts_with("HTTP/1.1 405"));
    assert!(resp.contains("Allow: GET"));

    server.shutdown();
}

#[test]
fn body_bearing_requests_are_refused_and_closed() {
    // Regression: a refused body must also close the connection —
    // answering 400 with keep-alive would let the unread body bytes be
    // parsed and served as the next request (request smuggling).
    let (server, _, _) = serve(vehicles_db(6, None));
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let smuggled = b"GET /smuggled HTTP/1.1\r\nHost: x\r\n\r\n";
    let req = format!(
        "POST /search HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        smuggled.len()
    );
    s.write_all(req.as_bytes()).unwrap();
    s.write_all(smuggled).unwrap();
    let resp = read_until_close_or(&mut s, "NEVER-MATCHES");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    assert!(resp.contains("Connection: close"), "{resp}");
    assert!(
        !resp.contains("/smuggled"),
        "the body must never be served as a request: {resp}"
    );
    let stats = server.shutdown();
    assert_eq!(stats.requests, 1, "exactly one request parsed");
}

#[test]
fn http10_clients_never_get_chunked() {
    // Regression: chunked framing is HTTP/1.1-only; a 1.0 client asking
    // for a page above the chunk threshold must get Content-Length.
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(600, 8),
        DbConfig::no_counts().with_k(400),
    )
    .build();
    let (server, _, _) = serve(db);
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET /search HTTP/1.0\r\nHost: t\r\n\r\n")
        .unwrap();
    let resp = read_until_close_or(&mut s, "</html>");
    assert!(
        resp.starts_with("HTTP/1.1 200"),
        "{}",
        &resp[..40.min(resp.len())]
    );
    assert!(
        !resp.contains("Transfer-Encoding"),
        "1.0 client got chunked"
    );
    assert!(resp.contains("Content-Length:"));
    assert!(resp.len() > 16 * 1024, "page above the chunk threshold");
    server.shutdown();
}

#[test]
fn graceful_shutdown_stops_serving() {
    let (server, _, _) = serve(vehicles_db(4, None));
    let addr = server.addr();
    let t = HttpTransport::new(addr.to_string());
    use hdsampler_webform::Transport as _;
    t.fetch("/search").unwrap();
    let stats = server.shutdown();
    assert!(stats.requests >= 1);
    // After shutdown the listener is gone: a fresh fetch must fail, not
    // hang.
    let t2 = HttpTransport::new(addr.to_string());
    assert!(t2.fetch("/search").is_err());
}

/// Read with a timeout until the pattern shows up (or the peer closes).
fn read_until_close_or(s: &mut TcpStream, pat: &str) -> String {
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let mut tmp = [0u8; 4096];
    loop {
        if String::from_utf8_lossy(&buf).contains(pat) {
            break;
        }
        match s.read(&mut tmp) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&tmp[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&buf).into_owned()
}
