//! Short-write resumption, property-tested: a [`ConnMachine`] drained
//! through a writer that accepts arbitrary slices and injects
//! `WouldBlock`/`Interrupted` at arbitrary boundaries must put exactly
//! the bytes on the wire that the blocking `write_response` path
//! produces — for both `Content-Length` and chunked framing, across
//! pipelined responses, with bodies well past any socket buffer.

use std::io::{self, ErrorKind, Write};

use hdsampler_server::{write_response, ConnMachine, Response, WriteProgress};
use proptest::prelude::*;
use proptest::test_runner::TestRng;

/// What the scripted writer does with one `write` call.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Accept at most this many bytes (a short write).
    Accept(usize),
    /// Refuse with `WouldBlock` — the socket buffer is full.
    Eagain,
    /// Refuse with `Interrupted` — a signal landed mid-syscall.
    Eintr,
}

/// A writer that replays a script of short writes and failures, then
/// accepts everything; the bytes it accepted are the "wire".
struct ScriptedWire {
    wire: Vec<u8>,
    script: Vec<Step>,
    step: usize,
}

impl ScriptedWire {
    fn new(script: Vec<Step>) -> Self {
        ScriptedWire {
            wire: Vec::new(),
            script,
            step: 0,
        }
    }
}

impl Write for ScriptedWire {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let step = self.script.get(self.step).copied();
        self.step += 1;
        match step {
            Some(Step::Eagain) => Err(io::Error::new(ErrorKind::WouldBlock, "buffer full")),
            Some(Step::Eintr) => Err(io::Error::new(ErrorKind::Interrupted, "signal")),
            Some(Step::Accept(cap)) => {
                let n = buf.len().min(cap.max(1));
                self.wire.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            // Script exhausted: the socket drains freely from here on.
            None => {
                self.wire.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Draws one scripted-wire step: mostly short writes of 1..=2048 bytes —
/// small enough to split chunked framing mid-header, mid-body and
/// mid-trailer — with `WouldBlock` and `Interrupted` mixed in.
struct StepStrategy;

impl Strategy for StepStrategy {
    type Value = Step;

    fn generate(&self, rng: &mut TestRng) -> Step {
        match rng.next_u64() % 9 {
            0 | 1 => Step::Eagain,
            2 => Step::Eintr,
            _ => Step::Accept(1 + (rng.next_u64() % 2048) as usize),
        }
    }
}

/// Draws one response (with its keep-alive intent): bodies from empty to
/// 32 KiB — with a 512-byte chunk threshold both framings are exercised,
/// and 32 KiB is far beyond the scripted wire's largest single accept.
struct ResponseStrategy;

impl Strategy for ResponseStrategy {
    type Value = (Response, bool);

    fn generate(&self, rng: &mut TestRng) -> (Response, bool) {
        let len = (rng.next_u64() % (32 * 1024)) as usize;
        let body: String = (0..len)
            .map(|_| (0x20 + (rng.next_u64() % 0x5f) as u8) as char)
            .collect();
        let status = [200u16, 400, 429][(rng.next_u64() % 3) as usize];
        let resp = if rng.next_u64() & 1 == 0 {
            Response::html(status, "Scripted", body)
        } else {
            Response::text(status, "Scripted", body)
        };
        (resp, rng.next_u64() & 1 == 0)
    }
}

/// The 512-byte chunk threshold under test: small enough that most
/// generated bodies take the chunked path while short ones stay
/// `Content-Length`-framed.
const THRESHOLD: usize = 512;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: however the wire slices and stalls, the
    /// machine's resumed writes reassemble into exactly the blocking
    /// path's byte stream.
    #[test]
    fn resumed_writes_are_byte_identical_to_blocking_writes(
        responses in prop::collection::vec(ResponseStrategy, 1..4),
        allow_chunked in any::<bool>(),
        script in prop::collection::vec(StepStrategy, 0..256),
    ) {
        // Reference: the blocking path, one uninterrupted write.
        let mut expect = Vec::new();
        for (resp, keep_alive) in &responses {
            let threshold = if allow_chunked { THRESHOLD } else { usize::MAX };
            write_response(&mut expect, resp, *keep_alive, threshold).unwrap();
        }

        // The machine under test: pipeline every response into the
        // output queue, then drain through the scripted wire.
        let mut machine = ConnMachine::new();
        let mut queued = 0usize;
        for (resp, keep_alive) in &responses {
            queued += machine.queue_response(resp, *keep_alive, allow_chunked, THRESHOLD);
        }
        prop_assert_eq!(queued, expect.len(), "queueing reuses the blocking serializer");
        let expect_close = responses.iter().any(|(_, keep_alive)| !keep_alive);
        prop_assert_eq!(machine.close_after_flush(), expect_close);

        let mut wire = ScriptedWire::new(script);
        // Each Blocked return models parking on EPOLLOUT; the script is
        // finite, so the drain always terminates.
        let mut rounds = 0usize;
        loop {
            rounds += 1;
            prop_assert!(rounds <= 1024, "drain must terminate");
            match machine.write_some(&mut wire).expect("scripted wire never hard-fails") {
                WriteProgress::Done => break,
                WriteProgress::Blocked => prop_assert!(
                    machine.has_pending_out(),
                    "Blocked implies residual bytes stay queued"
                ),
            }
        }

        prop_assert!(!machine.has_pending_out(), "Done implies an empty queue");
        prop_assert_eq!(machine.close_after_flush(), expect_close, "close intent survives the drain");
        prop_assert_eq!(wire.wire, expect, "resumed byte stream diverged from the blocking write");
    }

    /// A writer that answers `Ok(0)` without signalling `WouldBlock` is
    /// broken; the machine must surface it as `WriteZero`, never spin.
    #[test]
    fn zero_byte_accepts_error_out(
        response in ResponseStrategy,
    ) {
        let (resp, keep_alive) = response;
        struct Stuck;
        impl Write for Stuck {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut machine = ConnMachine::new();
        machine.queue_response(&resp, keep_alive, true, THRESHOLD);
        if machine.has_pending_out() {
            let err = machine.write_some(&mut Stuck).expect_err("Ok(0) is an error");
            prop_assert_eq!(err.kind(), ErrorKind::WriteZero);
        }
    }
}
