//! End-to-end: the cooperative pipelined walker drives a *live*
//! `hdsampler-server` over loopback TCP — hundreds of in-flight requests
//! multiplexed onto a handful of connections by one thread — and each
//! walker's sample sequence equals what the thread-per-walker stack
//! produces for the same (site, walker) seed.

use std::sync::Arc;

use hdsampler_core::{DirectExecutor, HdsSampler, Sampler, StopReason, TraceLog};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::{FormInterface, Schema};
use hdsampler_server::{Adversary, HttpServer, ServerConfig, ServerHandle};
use hdsampler_webform::{
    AsyncTransport as _, ChaosSpec, CoopDriver, FetchPoll, FleetConfig, HttpTransport, LocalSite,
    SiteTask, Transport as _, WebFormInterface,
};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn vehicles_db(seed: u64) -> HiddenDb {
    WorkloadSpec::vehicles(
        VehiclesSpec::compact(600, seed),
        DbConfig::no_counts().with_k(50),
    )
    .build()
}

fn serve(db: HiddenDb) -> (ServerHandle, Arc<Schema>, usize) {
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
    let handle = HttpServer::serve(ServerConfig::default(), site).expect("bind loopback");
    (handle, schema, k)
}

fn remote_task(server: &ServerHandle, schema: &Arc<Schema>, k: usize) -> SiteTask<HttpTransport> {
    SiteTask::new(
        "live",
        WebFormInterface::new(
            HttpTransport::new(server.addr().to_string()),
            Arc::clone(schema),
            k,
            false,
        ),
    )
}

#[test]
fn coop_sequences_over_tcp_match_per_walker_seeds() {
    // The cooperative driver over a real socket must produce, per walker,
    // exactly the sample sequence a standalone thread-style HdsSampler
    // produces for the same FleetConfig::walker_config seed — the
    // interchangeability guarantee between the two drivers, now checked
    // through HTTP parsing, scraping and the shared history cache.
    let (server, schema, k) = serve(vehicles_db(4242));
    let cfg = FleetConfig {
        walkers_per_site: 4,
        target_per_site: 48,
        seed: 2009,
        slider: 0.5,
        ..FleetConfig::default()
    };
    let mut task = remote_task(&server, &schema, k);
    let (report, details) =
        CoopDriver::new(cfg.clone()).run_with_details(std::slice::from_mut(&mut task));
    assert_eq!(report.sites[0].stopped, StopReason::TargetReached);
    assert_eq!(report.total_samples(), 48);

    let per_walker = &details[0].per_walker_keys;
    assert_eq!(per_walker.len(), 4);
    assert!(per_walker.iter().filter(|k| !k.is_empty()).count() >= 2);

    for (w, keys) in per_walker.iter().enumerate() {
        // In-process twin with the same data seed, driven synchronously.
        let twin = vehicles_db(4242);
        let twin_schema = Arc::new(twin.schema().clone());
        let iface = WebFormInterface::new(
            LocalSite::new(twin, Arc::clone(&twin_schema)),
            twin_schema,
            k,
            false,
        );
        let mut reference =
            HdsSampler::new(DirectExecutor::new(&iface), cfg.walker_config(0, w)).unwrap();
        let expect: Vec<u64> = (0..keys.len())
            .map(|_| reference.next_sample().unwrap().row.key)
            .collect();
        assert_eq!(keys, &expect, "walker {w} diverged over the real wire");
    }

    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0);
    assert_eq!(
        stats.requests, report.sites[0].queries_issued,
        "every charged fetch is a served request"
    );
}

#[test]
fn hundreds_of_pipelined_walkers_on_many_connections() {
    // 256 walker machines, 64 TCP connections, one client thread: up to
    // 256 requests in flight, pipelined 4-deep per connection. Before the
    // epoll reactor this test was capped at 4 connections — one per
    // default pool worker; 64 keep-alive sockets would have starved the
    // thread-per-connection pool. The reactor (the default serve mode)
    // multiplexes them all on per-core readiness loops, so the wide
    // fan-out must sail through with zero server errors.
    let (server, schema, k) = serve(vehicles_db(99));
    let cfg = FleetConfig {
        walkers_per_site: 256,
        target_per_site: 200,
        seed: 7,
        slider: 0.4,
        ..FleetConfig::default()
    };
    let mut task = remote_task(&server, &schema, k);
    let mut trace = TraceLog::new();
    let (report, details) = CoopDriver::new(cfg).with_connections(64).run_traced(
        std::slice::from_mut(&mut task),
        &mut [],
        &mut [&mut trace],
    );

    let site = &report.sites[0];
    assert_eq!(site.stopped, StopReason::TargetReached);
    assert_eq!(site.samples.len(), 200);
    assert_eq!(details[0].connections, 64);
    assert!(
        site.queries_issued >= 200,
        "200 fresh-site samples need at least one fetch each"
    );

    // The driver stalls (every walker parked on an in-flight fetch) must
    // resolve by parking in the client reactor's `epoll_wait` — never by
    // the blocking `complete_query` fallback, which is reserved for a
    // silent server. The trace stream records each resolution.
    let forces = trace
        .events()
        .iter()
        .filter(|e| e.kind == "stall" && e.detail == "force")
        .count();
    assert_eq!(
        forces, 0,
        "a live wire with a reactor never blocks on one completion"
    );

    let t = task.iface.transport();
    assert_eq!(
        t.connections(),
        64,
        "exactly the 64 requested TCP connections"
    );
    assert_eq!(
        t.open_connections(),
        0,
        "the driver reaps idle keep-alive sockets when the site finishes"
    );

    let stats = server.shutdown();
    // The server-side count is the leak check: 256 walkers over one run
    // must have cost 64 TCP connections, not one-per-walker (and no
    // reconnect churn on top).
    assert_eq!(
        stats.connections, 64,
        "no reconnect churn and no per-walker sockets"
    );
    assert_eq!(stats.responses_server_error, 0);
    // Every charged fetch was written to the wire; the server parses all
    // of them except the (≤ walkers) in-flight ones cancelled when the
    // target landed, whose sockets closed before they were read.
    assert!(
        stats.requests <= site.queries_issued
            && stats.requests >= site.queries_issued.saturating_sub(256),
        "served {} of {} charged fetches",
        stats.requests,
        site.queries_issued
    );
}

#[test]
fn dead_walker_threads_do_not_strand_sockets() {
    // Regression (connection leak): the blocking face binds one
    // connection per ThreadId forever; dead walker threads used to strand
    // open keep-alive sockets and map entries for the life of the
    // transport. `close_idle` reaps both.
    let (server, schema, k) = serve(vehicles_db(5));
    let iface = Arc::new(WebFormInterface::new(
        HttpTransport::new(server.addr().to_string()),
        Arc::clone(&schema),
        k,
        false,
    ));

    // Eight short-lived walker threads, each doing one blocking fetch.
    std::thread::scope(|s| {
        for _ in 0..8 {
            let iface = Arc::clone(&iface);
            s.spawn(move || {
                iface.transport().fetch("/search").expect("page served");
            });
        }
    });
    let t = iface.transport();
    assert_eq!(t.connections(), 8, "one connection per walker thread");
    assert_eq!(t.open_connections(), 8, "all 8 sockets stranded open");
    assert_eq!(t.thread_bindings(), 8, "all 8 dead threads still bound");

    // The fix: reap between sites.
    assert_eq!(t.close_idle(), 8);
    assert_eq!(t.open_connections(), 0);
    assert_eq!(t.thread_bindings(), 0);

    // The transport stays usable: the next fetch simply rebinds.
    t.fetch("/search").expect("page served after reap");
    assert_eq!(t.thread_bindings(), 1);
    assert_eq!(t.open_connections(), 1);
    t.close_idle();

    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0);
    assert_eq!(stats.connections, 9, "8 walker sockets + 1 rebind");
}

#[test]
fn reactor_and_pool_serves_are_sequence_identical() {
    // The two serve modes share `handle_request` and `write_response`, so
    // a seeded cooperative run must harvest byte-identical pages — the
    // interchangeability guarantee that makes `--reactor` a safe default.
    // Checked end-to-end with a schedule that has no timing freedom: a
    // single walker on a single connection steps strictly sequentially
    // (every submit depends on the previous response), so the full sample
    // sequence is a pure function of the seeds and the server's bytes.
    // Any reactor/pool divergence in what goes on the wire shows up as a
    // diverged key sequence. (Racing walkers would reintroduce
    // client-side scheduling nondeterminism and test nothing extra.)
    let run = |mode: hdsampler_server::ServeMode| {
        let db = vehicles_db(77);
        let schema = Arc::new(db.schema().clone());
        let k = db.result_limit();
        let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
        let server = HttpServer::serve(
            ServerConfig {
                mode,
                ..ServerConfig::default()
            },
            site,
        )
        .expect("bind loopback");
        let cfg = FleetConfig {
            walkers_per_site: 1,
            target_per_site: 32,
            seed: 31,
            slider: 0.5,
            ..FleetConfig::default()
        };
        let mut task = remote_task(&server, &schema, k);
        let (report, details) = CoopDriver::new(cfg)
            .with_connections(1)
            .run_with_details(std::slice::from_mut(&mut task));
        assert_eq!(report.sites[0].stopped, StopReason::TargetReached);
        let stats = server.shutdown();
        assert_eq!(stats.responses_server_error, 0);
        (
            report.sites[0].samples.keys(),
            details[0].per_walker_keys.clone(),
        )
    };

    let (reactor_keys, reactor_walkers) = run(hdsampler_server::ServeMode::Reactor);
    let (pool_keys, pool_walkers) = run(hdsampler_server::ServeMode::Pool);
    assert_eq!(
        reactor_keys, pool_keys,
        "fleet-order sample sequence diverged between serve modes"
    );
    assert_eq!(
        reactor_walkers, pool_walkers,
        "per-walker sequences diverged between serve modes"
    );
}

#[test]
fn close_idle_deregisters_reactor_registrations_before_closing() {
    // Regression (stale epoll registration): `close_idle` used to drop
    // the socket and only then forget about the poller. Deregistering by
    // stored fd number *after* the close is at best a silent no-op and at
    // worst — once the kernel reuses the fd for a newly dialed cell —
    // removes the *live* cell's registration, so `wait_ready` parks for
    // its full timeout with no wake-up. The invariant under test:
    // reaping leaves zero registrations behind, and the reactor keeps
    // waking for connections dialed afterwards.
    let (server, _schema, _k) = serve(vehicles_db(43));
    let t = HttpTransport::new(server.addr().to_string());

    // Drive one fetch through the reactor path: submit, then park in
    // wait_ready until the completion is pumped in.
    let fetch_via_reactor = |t: &HttpTransport| {
        let conn = t.connect();
        let mut h = t.submit(conn, "/");
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            assert!(
                std::time::Instant::now() < deadline,
                "reactor-driven fetch starved: a registration went missing"
            );
            match t.poll(h) {
                FetchPoll::Ready(r) => break r.expect("page served"),
                FetchPoll::Pending(back) => {
                    h = back;
                    assert!(
                        t.wait_ready(100).is_some(),
                        "a live HttpTransport always has a reactor on Linux"
                    );
                }
            }
        }
    };

    fetch_via_reactor(&t);
    assert!(
        t.registered_conns() <= 1,
        "at most the one awaited connection is registered"
    );

    // The reap must deregister before closing — afterwards no cell holds
    // a registration.
    assert!(t.close_idle() >= 1);
    assert_eq!(
        t.registered_conns(),
        0,
        "close_idle deregisters every reaped connection from the poller"
    );

    // The poller survives the reap: a fresh cell (likely reusing the
    // just-freed fd number) registers and wakes normally.
    fetch_via_reactor(&t);
    t.close_idle();
    assert_eq!(t.registered_conns(), 0);

    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0);
}

#[test]
fn stalls_park_in_the_client_reactor_never_in_blocking_completes() {
    // A served site that answers with real latency: right after a submit
    // burst there is nothing to harvest for ~15 ms, so the driver stalls
    // (every walker parked on an in-flight fetch). Each stall must
    // resolve as a "stall"/"wait" span — the driver parked in one
    // `epoll_wait` across its connections — and the blocking
    // `complete_query` fallback ("stall"/"force", the liveness escape
    // against a silent server) must never fire on a live wire.
    let db = vehicles_db(17);
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
    let spec = ChaosSpec::parse("seed=3,latency=15").expect("latency-only chaos");
    let adversary = Arc::new(Adversary::new(site, spec));
    let server = HttpServer::serve(ServerConfig::default(), adversary).expect("bind loopback");

    let cfg = FleetConfig {
        walkers_per_site: 8,
        target_per_site: 16,
        seed: 11,
        slider: 0.5,
        ..FleetConfig::default()
    };
    let mut task = remote_task(&server, &schema, k);
    let mut trace = TraceLog::new();
    let (report, _) = CoopDriver::new(cfg).with_connections(4).run_traced(
        std::slice::from_mut(&mut task),
        &mut [],
        &mut [&mut trace],
    );
    assert_eq!(report.sites[0].stopped, StopReason::TargetReached);

    let waits: Vec<_> = trace
        .events()
        .iter()
        .filter(|e| e.kind == "stall" && e.detail == "wait")
        .collect();
    let forces = trace
        .events()
        .iter()
        .filter(|e| e.kind == "stall" && e.detail == "force")
        .count();
    assert!(
        !waits.is_empty(),
        "a 15 ms-latency site stalls the driver at least once, and every \
         stall parks in the reactor"
    );
    assert_eq!(
        forces, 0,
        "the blocking completion fallback is reserved for a dead server"
    );
    // Each parked wait measured real elapsed time and a real connection.
    for w in &waits {
        assert!(w.dur_ms >= 1, "a wait span records its parked duration");
    }

    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0);
}
