//! End-to-end: the cooperative pipelined walker drives a *live*
//! `hdsampler-server` over loopback TCP — hundreds of in-flight requests
//! multiplexed onto a handful of connections by one thread — and each
//! walker's sample sequence equals what the thread-per-walker stack
//! produces for the same (site, walker) seed.

use std::sync::Arc;

use hdsampler_core::{DirectExecutor, HdsSampler, Sampler, StopReason};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::{FormInterface, Schema};
use hdsampler_server::{HttpServer, ServerConfig, ServerHandle};
use hdsampler_webform::{
    CoopDriver, FleetConfig, HttpTransport, LocalSite, SiteTask, Transport as _, WebFormInterface,
};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn vehicles_db(seed: u64) -> HiddenDb {
    WorkloadSpec::vehicles(
        VehiclesSpec::compact(600, seed),
        DbConfig::no_counts().with_k(50),
    )
    .build()
}

fn serve(db: HiddenDb) -> (ServerHandle, Arc<Schema>, usize) {
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
    let handle = HttpServer::serve(ServerConfig::default(), site).expect("bind loopback");
    (handle, schema, k)
}

fn remote_task(server: &ServerHandle, schema: &Arc<Schema>, k: usize) -> SiteTask<HttpTransport> {
    SiteTask::new(
        "live",
        WebFormInterface::new(
            HttpTransport::new(server.addr().to_string()),
            Arc::clone(schema),
            k,
            false,
        ),
    )
}

#[test]
fn coop_sequences_over_tcp_match_per_walker_seeds() {
    // The cooperative driver over a real socket must produce, per walker,
    // exactly the sample sequence a standalone thread-style HdsSampler
    // produces for the same FleetConfig::walker_config seed — the
    // interchangeability guarantee between the two drivers, now checked
    // through HTTP parsing, scraping and the shared history cache.
    let (server, schema, k) = serve(vehicles_db(4242));
    let cfg = FleetConfig {
        walkers_per_site: 4,
        target_per_site: 48,
        seed: 2009,
        slider: 0.5,
        ..FleetConfig::default()
    };
    let mut task = remote_task(&server, &schema, k);
    let (report, details) =
        CoopDriver::new(cfg.clone()).run_with_details(std::slice::from_mut(&mut task));
    assert_eq!(report.sites[0].stopped, StopReason::TargetReached);
    assert_eq!(report.total_samples(), 48);

    let per_walker = &details[0].per_walker_keys;
    assert_eq!(per_walker.len(), 4);
    assert!(per_walker.iter().filter(|k| !k.is_empty()).count() >= 2);

    for (w, keys) in per_walker.iter().enumerate() {
        // In-process twin with the same data seed, driven synchronously.
        let twin = vehicles_db(4242);
        let twin_schema = Arc::new(twin.schema().clone());
        let iface = WebFormInterface::new(
            LocalSite::new(twin, Arc::clone(&twin_schema)),
            twin_schema,
            k,
            false,
        );
        let mut reference =
            HdsSampler::new(DirectExecutor::new(&iface), cfg.walker_config(0, w)).unwrap();
        let expect: Vec<u64> = (0..keys.len())
            .map(|_| reference.next_sample().unwrap().row.key)
            .collect();
        assert_eq!(keys, &expect, "walker {w} diverged over the real wire");
    }

    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0);
    assert_eq!(
        stats.requests, report.sites[0].queries_issued,
        "every charged fetch is a served request"
    );
}

#[test]
fn hundreds_of_pipelined_walkers_on_a_handful_of_connections() {
    // 256 walker machines, 4 TCP connections, one client thread: up to
    // 256 requests in flight, pipelined 64-deep per connection.
    let (server, schema, k) = serve(vehicles_db(99));
    let cfg = FleetConfig {
        walkers_per_site: 256,
        target_per_site: 200,
        seed: 7,
        slider: 0.4,
        ..FleetConfig::default()
    };
    let mut task = remote_task(&server, &schema, k);
    let (report, details) = CoopDriver::new(cfg)
        .with_connections(4)
        .run_with_details(std::slice::from_mut(&mut task));

    let site = &report.sites[0];
    assert_eq!(site.stopped, StopReason::TargetReached);
    assert_eq!(site.samples.len(), 200);
    assert_eq!(details[0].connections, 4);
    assert!(
        site.queries_issued >= 200,
        "200 fresh-site samples need at least one fetch each"
    );

    let t = task.iface.transport();
    assert_eq!(
        t.connections(),
        4,
        "exactly the 4 requested TCP connections"
    );
    assert_eq!(
        t.open_connections(),
        0,
        "the driver reaps idle keep-alive sockets when the site finishes"
    );

    let stats = server.shutdown();
    // The server-side count is the leak check: 256 walkers over one run
    // must have cost 4 TCP connections, not 4-per-walker-thread.
    assert_eq!(
        stats.connections, 4,
        "no reconnect churn and no per-walker sockets"
    );
    assert_eq!(stats.responses_server_error, 0);
    // Every charged fetch was written to the wire; the server parses all
    // of them except the (≤ walkers) in-flight ones cancelled when the
    // target landed, whose sockets closed before they were read.
    assert!(
        stats.requests <= site.queries_issued
            && stats.requests >= site.queries_issued.saturating_sub(256),
        "served {} of {} charged fetches",
        stats.requests,
        site.queries_issued
    );
}

#[test]
fn dead_walker_threads_do_not_strand_sockets() {
    // Regression (connection leak): the blocking face binds one
    // connection per ThreadId forever; dead walker threads used to strand
    // open keep-alive sockets and map entries for the life of the
    // transport. `close_idle` reaps both.
    let (server, schema, k) = serve(vehicles_db(5));
    let iface = Arc::new(WebFormInterface::new(
        HttpTransport::new(server.addr().to_string()),
        Arc::clone(&schema),
        k,
        false,
    ));

    // Eight short-lived walker threads, each doing one blocking fetch.
    std::thread::scope(|s| {
        for _ in 0..8 {
            let iface = Arc::clone(&iface);
            s.spawn(move || {
                iface.transport().fetch("/search").expect("page served");
            });
        }
    });
    let t = iface.transport();
    assert_eq!(t.connections(), 8, "one connection per walker thread");
    assert_eq!(t.open_connections(), 8, "all 8 sockets stranded open");
    assert_eq!(t.thread_bindings(), 8, "all 8 dead threads still bound");

    // The fix: reap between sites.
    assert_eq!(t.close_idle(), 8);
    assert_eq!(t.open_connections(), 0);
    assert_eq!(t.thread_bindings(), 0);

    // The transport stays usable: the next fetch simply rebinds.
    t.fetch("/search").expect("page served after reap");
    assert_eq!(t.thread_bindings(), 1);
    assert_eq!(t.open_connections(), 1);
    t.close_idle();

    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0);
    assert_eq!(stats.connections, 9, "8 walker sockets + 1 rebind");
}
