//! The observability plane end-to-end: `/metrics` exposition scrapes,
//! client-stamped `x-hds-trace` ids landing in the server's request log,
//! and `/events` streaming bridged sample events to a remote watcher.

use std::sync::Arc;

use hdsampler_core::{parse_exposition, Sample, SampleEvent, SampleMeta, SampleSink};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::{FormInterface as _, Row, Schema};
use hdsampler_server::{BridgeSink, HttpServer, ServerConfig, ServerHandle};
use hdsampler_webform::{watch_events, HttpTransport, LocalSite, Transport};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};
use proptest::prelude::*;

fn vehicles_db(seed: u64) -> HiddenDb {
    WorkloadSpec::vehicles(
        VehiclesSpec::compact(400, seed),
        DbConfig::no_counts().with_k(50),
    )
    .build()
}

fn serve(db: HiddenDb) -> (ServerHandle, Arc<Schema>) {
    let schema = Arc::new(db.schema().clone());
    let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
    let handle = HttpServer::serve(ServerConfig::default(), site).expect("bind loopback");
    (handle, schema)
}

#[test]
fn metrics_scrapes_parse_and_stay_monotone() {
    let (server, _schema) = serve(vehicles_db(11));
    let addr = server.addr().to_string();
    let t = HttpTransport::new(addr);

    let scrape = |t: &HttpTransport| {
        let text = t.fetch("/metrics").expect("metrics served");
        parse_exposition(&text).expect("every line parses")
    };

    let first = scrape(&t);
    assert!(first.contains_key("hds_server_requests_total"));
    assert!(first.contains_key("hds_server_bytes_in_total"));
    assert!(first.contains_key("hds_server_route_requests_total{route=\"search\"}"));

    // Traffic between scrapes: a landing page and two search probes.
    t.fetch("/").expect("landing");
    let _ = t.fetch("/search?__bogus=1"); // 400s still count
    t.fetch("/metrics")
        .expect("second scrape warms its own counter");

    let second = scrape(&t);
    for (name, value) in &first {
        assert!(
            second.get(name).is_some_and(|v| v >= value),
            "counter {name} went backwards: {value} → {:?}",
            second.get(name)
        );
    }
    assert!(second["hds_server_route_requests_total{route=\"landing\"}"] >= 1.0);
    assert!(second["hds_server_route_requests_total{route=\"metrics\"}"] >= 2.0);
    assert!(second["hds_server_bytes_in_total"] > first["hds_server_bytes_in_total"]);

    // The final scrape agrees with the handle's own stats snapshot.
    let last = scrape(&t);
    let stats = server.stats();
    assert_eq!(
        last["hds_server_connections_total"] as u64,
        stats.connections
    );
    // The scrape's own response is written after its body was rendered,
    // so the handle's counter is at least the rendered value.
    assert!((last["hds_server_bytes_out_total"] as u64) <= stats.bytes_out);
    assert_eq!(
        last["hds_server_responses_total{class=\"client_error\"}"] as u64,
        stats.responses_client_error
    );
    server.shutdown();
}

#[test]
fn client_trace_ids_land_in_the_request_log() {
    let (server, _schema) = serve(vehicles_db(23));
    let addr = server.addr().to_string();
    let t = HttpTransport::new(addr);
    t.fetch("/").expect("landing");
    let _ = t.fetch("/search?"); // whatever the form thinks, it is logged
    t.fetch("/").expect("landing again");

    let log = server.request_log();
    assert_eq!(log.len(), 3);
    // The blocking face binds one connection, so the stamped ids are the
    // deterministic per-connection sequence c0-1, c0-2, c0-3.
    for (i, entry) in log.iter().enumerate() {
        assert_eq!(entry.seq, i as u64 + 1);
        assert_eq!(
            entry.trace,
            format!("c0-{}", i + 1),
            "client-stamped x-hds-trace id is echoed into the log"
        );
    }
    assert_eq!(log[0].target, "/");
    assert_eq!(log[0].status, 200);
    server.shutdown();
}

#[test]
fn trace_id_is_echoed_on_the_response() {
    use std::io::{Read as _, Write as _};
    let (server, _schema) = serve(vehicles_db(29));
    let mut s = std::net::TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\nx-hds-trace: c9-42\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(
        resp.contains("x-hds-trace: c9-42\r\n"),
        "server echoes the span id: {}",
        resp.lines().take(8).collect::<Vec<_>>().join(" | ")
    );
    server.shutdown();
}

#[test]
fn events_stream_delivers_bridged_samples_to_a_watcher() {
    let (server, _schema) = serve(vehicles_db(31));
    let addr = server.addr().to_string();
    let hub = server.events();

    // A remote watcher subscribes over real TCP.
    let watcher = std::thread::spawn(move || {
        let mut seen = Vec::new();
        watch_events(&addr, |ev| {
            seen.push((ev.collected, ev.key));
            true
        })
        .map(|n| (n, seen))
    });

    // Give the watcher time to connect before publishing.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while hub.subscribers() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(hub.subscribers() > 0, "watcher never subscribed");

    // A local sink bridged onto the hub: every accepted-sample event it
    // sees must reach the remote watcher.
    let mut sink = BridgeSink::new(Arc::clone(&hub));
    let rows: Vec<Sample> = (1..=5)
        .map(|k| Sample {
            row: Row::new(k, vec![0], vec![]),
            weight: 1.0,
            meta: SampleMeta::default(),
        })
        .collect();
    for (i, s) in rows.iter().enumerate() {
        sink.observe(&SampleEvent {
            sample: s,
            site: 0,
            walker: 0,
            collected: i + 1,
            target: 5,
            queries: (i as u64 + 1) * 2,
            requests: (i as u64 + 1) * 3,
        });
    }

    // Shutdown ends the stream; the watcher's read loop terminates.
    server.shutdown();
    let (delivered, seen) = watcher.join().unwrap().expect("watcher stream clean");
    assert_eq!(delivered, 5, "every accepted-sample event arrived");
    assert_eq!(
        seen,
        vec![(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)],
        "in publish order, payloads intact"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Satellite: every `/metrics` line parses and the rendered values
    /// round-trip exactly, for arbitrary counter states.
    #[test]
    fn exposition_roundtrips_for_arbitrary_stats(
        connections in 0u64..1_000_000,
        requests in 0u64..1_000_000,
        ok in 0u64..1_000_000,
        client_err in 0u64..1_000_000,
        server_err in 0u64..1_000_000,
        dropped in 0u64..1_000_000,
        bytes_out in 0u64..u64::MAX / 2,
        bytes_in in 0u64..u64::MAX / 2,
        landing in 0u64..1_000_000,
        search in 0u64..1_000_000,
        metrics in 0u64..1_000_000,
        events in 0u64..1_000_000,
        other in 0u64..1_000_000,
        wakeups in 0u64..1_000_000,
        ready_events in 0u64..1_000_000,
        accepts in 0u64..1_000_000,
        timers in 0u64..1_000_000,
        open in 0u64..1_000_000,
        admission_rejects in 0u64..1_000_000,
    ) {
        let stats = hdsampler_server::ServerStats {
            connections,
            requests,
            responses_ok: ok,
            responses_client_error: client_err,
            responses_server_error: server_err,
            connections_dropped: dropped,
            bytes_out,
            bytes_in,
            requests_landing: landing,
            requests_search: search,
            requests_metrics: metrics,
            requests_events: events,
            requests_other: other,
            reactor_wakeups: wakeups,
            reactor_ready_events: ready_events,
            reactor_accepts: accepts,
            timers_fired: timers,
            open_connections: open,
            admission_rejects,
        };
        let text = hdsampler_server::render_server_metrics(&stats, None);
        let parsed = parse_exposition(&text).expect("every line parses");
        prop_assert_eq!(parsed["hds_server_connections_total"] as u64, connections);
        prop_assert_eq!(parsed["hds_server_requests_total"] as u64, requests);
        prop_assert_eq!(parsed["hds_server_responses_total{class=\"ok\"}"] as u64, ok);
        prop_assert_eq!(
            parsed["hds_server_route_requests_total{route=\"search\"}"] as u64,
            search
        );
        prop_assert_eq!(parsed["hds_server_bytes_in_total"], bytes_in as f64);
        prop_assert_eq!(parsed["hds_server_reactor_wakeups_total"] as u64, wakeups);
        prop_assert_eq!(parsed["hds_server_open_connections"] as u64, open);
        prop_assert_eq!(
            parsed["hds_server_admission_rejects_total"] as u64,
            admission_rejects
        );
        prop_assert_eq!(parsed.len(), 19, "one series per counter (plus the gauge)");
    }
}
