//! The `/events` telemetry plane: an in-process broadcast hub bridged
//! onto a chunked SSE stream, plus the [`SampleSink`] that feeds it.
//!
//! [`EventHub`] is deliberately dumb: a fan-out of pre-framed SSE
//! payload strings over `std::sync::mpsc` channels, pruned lazily on
//! publish. Two producers feed it — [`BridgeSink`] mirrors every
//! accepted sample a local [`SampleSink`] sees (so a remote
//! `--watch` over `/events` observes exactly what a local progress
//! display would), and the server's connection loop publishes
//! per-request [`TraceEvent`]s — and the `/events` route drains one
//! subscription per watcher until the server stops.

use std::any::Any;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use hdsampler_core::{merged, SampleEvent, SampleSink, TraceEvent};
use hdsampler_webform::telemetry::{event_json, sample_event_json};

/// A broadcast hub of server-sent-event frames.
///
/// Publishing with no subscribers is free (no frame is even built), so
/// the hub can sit permanently in the request path.
#[derive(Debug, Default)]
pub struct EventHub {
    subs: Mutex<Vec<Sender<String>>>,
}

impl EventHub {
    /// A hub with no subscribers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a subscription receiving every frame published from now on.
    pub fn subscribe(&self) -> Receiver<String> {
        let (tx, rx) = channel();
        self.subs.lock().expect("hub lock").push(tx);
        rx
    }

    /// Live subscriptions (dead ones linger until the next publish).
    pub fn subscribers(&self) -> usize {
        self.subs.lock().expect("hub lock").len()
    }

    /// Broadcast one SSE frame (`event: <event>` + `data: <data>`),
    /// dropping subscribers whose receiver is gone.
    pub fn publish_frame(&self, event: &str, data: &str) {
        let mut subs = self.subs.lock().expect("hub lock");
        if subs.is_empty() {
            return;
        }
        let frame = format!("event: {event}\ndata: {data}\n\n");
        subs.retain(|tx| tx.send(frame.clone()).is_ok());
    }

    /// Broadcast an accepted-sample event in its wire form.
    pub fn publish_sample(&self, event: &SampleEvent<'_>) {
        self.publish_frame("sample", &sample_event_json(event));
    }

    /// Broadcast a trace event (the server's per-request records).
    pub fn publish_trace(&self, event: &TraceEvent) {
        self.publish_frame("trace", &event_json(event));
    }
}

/// A [`SampleSink`] that forwards every accepted sample to an
/// [`EventHub`] — the bridge between a local sampling run and its
/// remote `/events` watchers. Forks share the hub, so parallel drivers
/// stream from every worker.
#[derive(Debug, Clone)]
pub struct BridgeSink {
    hub: Arc<EventHub>,
}

impl BridgeSink {
    /// A sink publishing into `hub`.
    pub fn new(hub: Arc<EventHub>) -> Self {
        BridgeSink { hub }
    }
}

impl SampleSink for BridgeSink {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.hub.publish_sample(event);
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        Box::new(self.clone())
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        // Shared-hub sink: forks already published live; only typecheck.
        let _ = merged::<BridgeSink>(other);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_core::{Sample, SampleMeta};
    use hdsampler_model::Row;

    fn sample() -> Sample {
        Sample {
            row: Row::new(9, vec![0], vec![]),
            weight: 1.0,
            meta: SampleMeta::default(),
        }
    }

    #[test]
    fn hub_broadcasts_to_every_subscriber_and_prunes_dead_ones() {
        let hub = EventHub::new();
        let a = hub.subscribe();
        let b = hub.subscribe();
        hub.publish_frame("sample", "{}");
        assert_eq!(a.try_recv().unwrap(), "event: sample\ndata: {}\n\n");
        assert_eq!(b.try_recv().unwrap(), "event: sample\ndata: {}\n\n");
        drop(a);
        hub.publish_frame("trace", "x");
        assert_eq!(hub.subscribers(), 1, "dead subscriber pruned on publish");
        assert!(b.try_recv().unwrap().starts_with("event: trace\n"));
    }

    #[test]
    fn bridge_sink_mirrors_samples_through_forks() {
        let hub = Arc::new(EventHub::new());
        let rx = hub.subscribe();
        let mut sink = BridgeSink::new(Arc::clone(&hub));
        let s = sample();
        let ev = SampleEvent {
            sample: &s,
            site: 0,
            walker: 1,
            collected: 1,
            target: 2,
            queries: 3,
            requests: 4,
        };
        let mut forked = sink.fork();
        forked.observe(&ev);
        sink.merge(forked);
        sink.observe(&ev);
        let frames: Vec<String> = rx.try_iter().collect();
        assert_eq!(frames.len(), 2, "fork and parent share the hub");
        assert!(frames[0].contains("\"collected\":1"));
    }
}
