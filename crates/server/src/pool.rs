//! A bounded thread pool for connection handling.
//!
//! Accepted connections are dispatched to a fixed set of worker threads
//! through a *bounded* queue: when every worker is busy and the queue is
//! full, [`ThreadPool::execute`] blocks the acceptor, the listener's
//! backlog fills, and new clients wait in the kernel — backpressure
//! instead of unbounded thread or queue growth.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed-size worker pool over a bounded job queue.
#[derive(Debug)]
pub struct ThreadPool {
    tx: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// A pool of `workers` threads with room for `queue_depth` waiting
    /// jobs. Both are clamped to at least 1.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let (tx, rx) = std::sync::mpsc::sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("hds-http-{i}"))
                    .spawn(move || worker_loop(&rx))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run `job` on a worker, blocking while the queue is full. Returns
    /// `false` once the pool has shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }

    /// Stop accepting jobs and join every worker; queued jobs still run.
    pub fn shutdown(&mut self) {
        drop(self.tx.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the receiver lock only while *taking* a job, never while
        // running one, so idle workers pick up queued connections the
        // moment they free up.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            Ok(job) => job(),
            Err(_) => return, // all senders gone: shutdown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn runs_jobs_on_workers_and_drains_on_shutdown() {
        let counter = Arc::new(AtomicUsize::new(0));
        let mut pool = ThreadPool::new(3, 4);
        assert_eq!(pool.workers(), 3);
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            assert!(pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 20, "queued jobs drain");
        assert!(!pool.execute(|| {}), "no jobs after shutdown");
    }

    #[test]
    fn bounded_queue_applies_backpressure() {
        // One worker stuck on a slow job + queue depth 1: the third
        // submission must block until the worker frees up, not return
        // immediately — observable as elapsed time on the submitter.
        let mut pool = ThreadPool::new(1, 1);
        let start = std::time::Instant::now();
        pool.execute(|| std::thread::sleep(Duration::from_millis(120)));
        pool.execute(|| {});
        pool.execute(|| {});
        assert!(
            start.elapsed() >= Duration::from_millis(100),
            "third job must wait for queue space"
        );
        pool.shutdown();
    }
}
