//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The parser is *incremental*: it is handed whatever bytes have arrived
//! so far and answers "complete request", "need more", or "malformed" —
//! so the connection loop works identically for requests that arrive in
//! one segment or byte by byte. Limits guard every dimension an untrusted
//! peer controls: request-line length, header-section size, header count.

use std::io::{self, Write};

/// Longest accepted request line (method + target + version).
pub const MAX_REQUEST_LINE_BYTES: usize = 8 * 1024;
/// Longest accepted header section (request line + all headers).
pub const MAX_HEADER_SECTION_BYTES: usize = 16 * 1024;
/// Most headers accepted on one request.
pub const MAX_HEADER_COUNT: usize = 64;
/// Bodies larger than this are sent with chunked transfer-encoding.
pub const DEFAULT_CHUNK_THRESHOLD: usize = 16 * 1024;
/// Chunk size used when writing chunked bodies.
const CHUNK_SIZE: usize = 8 * 1024;

/// HTTP versions this server speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HttpVersion {
    /// HTTP/1.0: close-by-default connections.
    H10,
    /// HTTP/1.1: keep-alive-by-default connections.
    H11,
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method token, as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target: path plus optional query string, percent-encoded.
    pub target: String,
    /// Protocol version.
    pub version: HttpVersion,
    /// Header `(name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
}

impl Request {
    /// First header named `name` (case-insensitive), if any.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection should stay open after this exchange:
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
    /// `Connection` header overrides either way.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version == HttpVersion::H11,
        }
    }
}

/// Why a request failed to parse; maps onto a response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The request line is not `METHOD SP TARGET SP VERSION`.
    BadRequestLine(String),
    /// The target is not an absolute path of visible ASCII.
    BadTarget(String),
    /// The version token is not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion(String),
    /// A header line has no colon or a malformed name.
    BadHeader(String),
    /// Request line or header section exceeds its size limit.
    TooLarge,
    /// More than [`MAX_HEADER_COUNT`] headers.
    TooManyHeaders,
}

impl RequestError {
    /// The status line this error answers with.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            RequestError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
            RequestError::TooLarge | RequestError::TooManyHeaders => {
                (431, "Request Header Fields Too Large")
            }
            _ => (400, "Bad Request"),
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadRequestLine(line) => write!(f, "malformed request line `{line}`"),
            RequestError::BadTarget(t) => write!(f, "malformed request target `{t}`"),
            RequestError::UnsupportedVersion(v) => write!(f, "unsupported version `{v}`"),
            RequestError::BadHeader(h) => write!(f, "malformed header line `{h}`"),
            RequestError::TooLarge => write!(f, "request headers exceed the size limit"),
            RequestError::TooManyHeaders => write!(f, "too many header fields"),
        }
    }
}

// The header-section terminator scan is shared with the HTTP client in
// hdsampler-webform: both sides must agree byte for byte on where a
// header section ends.
use hdsampler_webform::httpc::find_header_end;

/// Try to parse one complete request from the front of `buf`.
///
/// `Ok(Some((request, bytes_consumed)))` when a full header section is
/// present, `Ok(None)` when more bytes are needed, `Err` when the bytes
/// can never become a valid request (the connection should answer the
/// error and close).
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, RequestError> {
    let Some(header_end) = find_header_end(buf) else {
        // No terminator yet: enforce limits on what has arrived, so a
        // peer streaming an endless request line is cut off early.
        if !buf.contains(&b'\n') && buf.len() > MAX_REQUEST_LINE_BYTES {
            return Err(RequestError::TooLarge);
        }
        if buf.len() > MAX_HEADER_SECTION_BYTES {
            return Err(RequestError::TooLarge);
        }
        return Ok(None);
    };
    if header_end > MAX_HEADER_SECTION_BYTES {
        return Err(RequestError::TooLarge);
    }
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| RequestError::BadRequestLine("<non-UTF-8 bytes>".into()))?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));
    let request_line = lines.next().unwrap_or("");
    if request_line.len() > MAX_REQUEST_LINE_BYTES {
        return Err(RequestError::TooLarge);
    }

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(RequestError::BadRequestLine(request_line.into())),
    };
    if !method.bytes().all(|b| b.is_ascii_alphabetic()) {
        return Err(RequestError::BadRequestLine(request_line.into()));
    }
    if !target.starts_with('/') || !target.bytes().all(|b| (0x21..=0x7E).contains(&b)) {
        return Err(RequestError::BadTarget(target.into()));
    }
    let version = match version {
        "HTTP/1.0" => HttpVersion::H10,
        "HTTP/1.1" => HttpVersion::H11,
        other => return Err(RequestError::UnsupportedVersion(other.into())),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        if headers.len() >= MAX_HEADER_COUNT {
            return Err(RequestError::TooManyHeaders);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| RequestError::BadHeader(line.into()))?;
        // Header names are tokens: no whitespace, at least one character.
        if name.is_empty()
            || !name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b"-_!#$%&'*+.^`|~".contains(&b))
        {
            return Err(RequestError::BadHeader(line.into()));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    Ok(Some((
        Request {
            method: method.to_string(),
            target: target.to_string(),
            version,
            headers,
        },
        header_end,
    )))
}

/// A response ready to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: &'static str,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (e.g. the budget-exhaustion markers).
    pub extra_headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
    /// When set, the server writes *nothing* and severs the connection —
    /// the peer sees an abrupt close mid-exchange (fault injection; see
    /// the `Adversary` site decorator). Status/body are ignored.
    pub drop_connection: bool,
}

impl Response {
    /// An HTML page response.
    pub fn html(status: u16, reason: &'static str, body: String) -> Self {
        Response {
            status,
            reason,
            content_type: "text/html; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
            drop_connection: false,
        }
    }

    /// A plain-text response (error bodies).
    pub fn text(status: u16, reason: &'static str, body: String) -> Self {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
            drop_connection: false,
        }
    }

    /// A response that kills the connection instead of answering.
    pub fn sever() -> Self {
        let mut resp = Response::text(503, "Service Unavailable", String::new());
        resp.drop_connection = true;
        resp
    }
}

/// Serialize `resp` to `w`. Bodies above `chunk_threshold` use chunked
/// transfer-encoding, smaller ones `Content-Length`. Returns the bytes
/// written.
pub fn write_response(
    w: &mut impl Write,
    resp: &Response,
    keep_alive: bool,
    chunk_threshold: usize,
) -> io::Result<usize> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: {}\r\n",
        resp.status,
        resp.reason,
        resp.content_type,
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    let chunked = resp.body.len() > chunk_threshold;
    let mut written = 0;
    if chunked {
        head.push_str("Transfer-Encoding: chunked\r\n\r\n");
        w.write_all(head.as_bytes())?;
        written += head.len();
        for chunk in resp.body.chunks(CHUNK_SIZE) {
            let size_line = format!("{:X}\r\n", chunk.len());
            w.write_all(size_line.as_bytes())?;
            w.write_all(chunk)?;
            w.write_all(b"\r\n")?;
            written += size_line.len() + chunk.len() + 2;
        }
        w.write_all(b"0\r\n\r\n")?;
        written += 5;
    } else {
        head.push_str(&format!("Content-Length: {}\r\n\r\n", resp.body.len()));
        w.write_all(head.as_bytes())?;
        w.write_all(&resp.body)?;
        written += head.len() + resp.body.len();
    }
    w.flush()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(raw: &[u8]) -> (Request, usize) {
        parse_request(raw).expect("well-formed").expect("complete")
    }

    #[test]
    fn simple_get_parses() {
        let raw = b"GET /search?make=Honda HTTP/1.1\r\nHost: x\r\n\r\n";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.method, "GET");
        assert_eq!(req.target, "/search?make=Honda");
        assert_eq!(req.version, HttpVersion::H11);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.wants_keep_alive());
        assert_eq!(used, raw.len());
    }

    #[test]
    fn pipelined_requests_consume_exactly_one() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.target, "/a");
        let (req2, used2) = parse_ok(&raw[used..]);
        assert_eq!(req2.target, "/b");
        assert_eq!(used + used2, raw.len());
    }

    #[test]
    fn incomplete_requests_need_more() {
        for raw in [
            &b"GET"[..],
            b"GET /search HTTP/1.1\r\n",
            b"GET /search HTTP/1.1\r\nHost: x\r\n",
        ] {
            assert!(parse_request(raw).unwrap().is_none(), "{raw:?}");
        }
    }

    #[test]
    fn malformed_request_lines_are_rejected() {
        for raw in [
            &b"GET/search HTTP/1.1\r\n\r\n"[..],
            b"GET /a /b HTTP/1.1\r\n\r\n",
            b"G3T /a HTTP/1.1\r\n\r\n",
            b" /a HTTP/1.1\r\n\r\n",
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"GET /a\tb HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_request(raw).unwrap_err();
            assert_eq!(err.status().0, 400, "{raw:?} → {err:?}");
        }
        assert_eq!(
            parse_request(b"GET /a HTTP/2.0\r\n\r\n")
                .unwrap_err()
                .status()
                .0,
            505
        );
    }

    #[test]
    fn header_limits_enforced() {
        let long_line = format!(
            "GET /{} HTTP/1.1\r\n\r\n",
            "a".repeat(MAX_REQUEST_LINE_BYTES)
        );
        assert_eq!(
            parse_request(long_line.as_bytes()).unwrap_err(),
            RequestError::TooLarge
        );
        // An endless request line is rejected before its terminator shows.
        let endless = vec![b'a'; MAX_REQUEST_LINE_BYTES + 2];
        assert_eq!(parse_request(&endless).unwrap_err(), RequestError::TooLarge);

        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..(MAX_HEADER_COUNT + 1) {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_eq!(
            parse_request(many.as_bytes()).unwrap_err(),
            RequestError::TooManyHeaders
        );

        let huge = format!(
            "GET / HTTP/1.1\r\nbig: {}\r\n\r\n",
            "x".repeat(MAX_HEADER_SECTION_BYTES)
        );
        assert_eq!(
            parse_request(huge.as_bytes()).unwrap_err(),
            RequestError::TooLarge
        );
    }

    #[test]
    fn bad_headers_are_rejected() {
        for raw in [
            &b"GET / HTTP/1.1\r\nno colon\r\n\r\n"[..],
            b"GET / HTTP/1.1\r\nbad name: v\r\n\r\n",
            b"GET / HTTP/1.1\r\n: empty\r\n\r\n",
        ] {
            assert!(matches!(
                parse_request(raw).unwrap_err(),
                RequestError::BadHeader(_)
            ));
        }
    }

    #[test]
    fn keep_alive_defaults_by_version() {
        let (h11, _) = parse_ok(b"GET / HTTP/1.1\r\n\r\n");
        assert!(h11.wants_keep_alive());
        let (h11_close, _) = parse_ok(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!h11_close.wants_keep_alive());
        let (h10, _) = parse_ok(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!h10.wants_keep_alive());
        let (h10_ka, _) = parse_ok(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(h10_ka.wants_keep_alive());
    }

    #[test]
    fn content_length_and_chunked_writing() {
        let resp = Response::html(200, "OK", "hello".into());
        let mut out = Vec::new();
        write_response(&mut out, &resp, true, DEFAULT_CHUNK_THRESHOLD).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 5\r\n"));
        assert!(text.ends_with("\r\n\r\nhello"));

        // A threshold of zero forces the chunked path.
        let mut out = Vec::new();
        write_response(&mut out, &resp, false, 0).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("5\r\nhello\r\n"));
        assert!(text.ends_with("0\r\n\r\n"));
    }
}
