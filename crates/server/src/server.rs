//! The TCP front door: accept loop, keep-alive connection handling,
//! bounded worker pool, graceful shutdown.

use std::io::{ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::http::{parse_request, write_response, Request, Response, DEFAULT_CHUNK_THRESHOLD};
use crate::site::SiteBehavior;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`] for the chosen one).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// acceptor itself blocks (backpressure).
    pub queue_depth: usize,
    /// Idle time after which a keep-alive connection is closed; also the
    /// per-request read deadline (slowloris guard).
    pub keep_alive_timeout: Duration,
    /// Bodies above this size are sent chunked instead of Content-Length.
    pub chunk_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 8,
            keep_alive_timeout: Duration::from_secs(5),
            chunk_threshold: DEFAULT_CHUNK_THRESHOLD,
        }
    }
}

/// Monotonic counters kept by a running server.
#[derive(Debug, Default)]
struct StatsInner {
    connections: AtomicU64,
    requests: AtomicU64,
    responses_ok: AtomicU64,
    responses_client_error: AtomicU64,
    responses_server_error: AtomicU64,
    connections_dropped: AtomicU64,
    bytes_out: AtomicU64,
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// TCP connections accepted.
    pub connections: u64,
    /// Requests parsed off those connections.
    pub requests: u64,
    /// 2xx responses written.
    pub responses_ok: u64,
    /// 4xx responses written.
    pub responses_client_error: u64,
    /// 5xx responses written.
    pub responses_server_error: u64,
    /// Connections severed without a response (injected drops).
    pub connections_dropped: u64,
    /// Response bytes written (headers + bodies + chunk framing).
    pub bytes_out: u64,
}

/// The HTTP/1.1 server: binds a listener and serves a mounted site.
pub struct HttpServer;

impl HttpServer {
    /// Bind `cfg.addr` and serve `site` until [`ServerHandle::shutdown`].
    pub fn serve<S: SiteBehavior + 'static>(
        cfg: ServerConfig,
        site: Arc<S>,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());

        let acceptor = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("hds-http-accept".into())
                .spawn(move || {
                    let mut pool = crate::pool::ThreadPool::new(cfg.workers, cfg.queue_depth);
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let site = Arc::clone(&site);
                        let stats = Arc::clone(&stats);
                        let stop = Arc::clone(&stop);
                        let cfg = cfg.clone();
                        if !pool.execute(move || {
                            serve_connection(stream, &*site, &stats, &stop, &cfg);
                        }) {
                            break;
                        }
                    }
                    // Joining here lets in-flight (and queued) connections
                    // finish their current requests before shutdown
                    // completes.
                    pool.shutdown();
                })?
        };

        Ok(ServerHandle {
            addr,
            stop,
            stats,
            acceptor: Some(acceptor),
        })
    }
}

/// Handle to a running server: the bound address, live stats, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.stats.connections.load(Ordering::Relaxed),
            requests: self.stats.requests.load(Ordering::Relaxed),
            responses_ok: self.stats.responses_ok.load(Ordering::Relaxed),
            responses_client_error: self.stats.responses_client_error.load(Ordering::Relaxed),
            responses_server_error: self.stats.responses_server_error.load(Ordering::Relaxed),
            connections_dropped: self.stats.connections_dropped.load(Ordering::Relaxed),
            bytes_out: self.stats.bytes_out.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting, let every worker finish its
    /// in-flight request, close idle keep-alive connections, join all
    /// threads. Returns the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// How often an idle keep-alive connection re-checks the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

/// Serve one connection until it closes, errs, times out idle, or the
/// server shuts down.
fn serve_connection(
    stream: TcpStream,
    site: &dyn SiteBehavior,
    stats: &StatsInner,
    stop: &AtomicBool,
    cfg: &ServerConfig,
) {
    stats.connections.fetch_add(1, Ordering::Relaxed);
    let mut stream = stream;
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    'conn: loop {
        // Phase 1: wait for one complete request.
        let deadline = Instant::now() + cfg.keep_alive_timeout;
        let (req, consumed) = loop {
            match parse_request(&buf) {
                Ok(Some(rc)) => break rc,
                Ok(None) => {}
                Err(e) => {
                    let (status, reason) = e.status();
                    let resp = Response::text(status, reason, format!("{status} {e}"));
                    write_and_count(&mut stream, &resp, false, false, cfg, stats);
                    break 'conn;
                }
            }
            // A quiet shutdown point: nothing (or only a partial request)
            // buffered and the server is stopping.
            if stop.load(Ordering::SeqCst) && buf.is_empty() {
                break 'conn;
            }
            if Instant::now() >= deadline {
                if !buf.is_empty() {
                    let resp = Response::text(408, "Request Timeout", "408 request timeout".into());
                    write_and_count(&mut stream, &resp, false, false, cfg, stats);
                }
                break 'conn;
            }
            match stream.read(&mut tmp) {
                Ok(0) => break 'conn,
                Ok(n) => buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break 'conn,
            }
        };
        buf.drain(..consumed);
        stats.requests.fetch_add(1, Ordering::Relaxed);

        // A body-bearing request would desynchronize the framing: this
        // server never reads bodies, so the unread bytes would be parsed
        // as the next request (request smuggling). Refuse AND close — a
        // keep-alive 400 here would serve the body as a request.
        let has_body = req
            .header("content-length")
            .is_some_and(|v| v.trim() != "0")
            || req.header("transfer-encoding").is_some();
        if has_body {
            let resp = Response::text(
                400,
                "Bad Request",
                "400 request bodies are not accepted".into(),
            );
            write_and_count(&mut stream, &resp, false, false, cfg, stats);
            break;
        }

        // Phase 2: answer it. Chunked framing is HTTP/1.1-only; a 1.0
        // client gets Content-Length regardless of body size.
        let keep_alive = req.wants_keep_alive() && !stop.load(Ordering::SeqCst);
        let allow_chunked = req.version == crate::http::HttpVersion::H11;
        let resp = route(site, &req);
        if resp.drop_connection {
            // Injected drop: sever without writing a byte — the peer sees
            // the close as a reset/EOF mid-exchange and must classify it
            // as transient.
            stats.connections_dropped.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if !write_and_count(&mut stream, &resp, keep_alive, allow_chunked, cfg, stats)
            || !keep_alive
        {
            break;
        }
    }
}

/// Method gate in front of the site.
fn route(site: &dyn SiteBehavior, req: &Request) -> Response {
    if req.method != "GET" {
        let mut resp = Response::text(
            405,
            "Method Not Allowed",
            format!("405 method `{}` not allowed (GET only)", req.method),
        );
        resp.extra_headers.push(("Allow".into(), "GET".into()));
        return resp;
    }
    site.get(&req.target)
}

/// Write a response, bump the status-class and byte counters; `false` when
/// the connection is no longer writable.
fn write_and_count(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    allow_chunked: bool,
    cfg: &ServerConfig,
    stats: &StatsInner,
) -> bool {
    let counter = match resp.status {
        200..=299 => &stats.responses_ok,
        400..=499 => &stats.responses_client_error,
        _ => &stats.responses_server_error,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let chunk_threshold = if allow_chunked {
        cfg.chunk_threshold
    } else {
        usize::MAX
    };
    match write_response(stream, resp, keep_alive, chunk_threshold) {
        Ok(n) => {
            stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
            true
        }
        Err(_) => false,
    }
}
