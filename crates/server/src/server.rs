//! The TCP front door: accept loop, keep-alive connection handling,
//! bounded worker pool, graceful shutdown — plus the built-in telemetry
//! plane every served site gets for free: `GET /metrics` (Prometheus
//! text exposition of [`ServerStats`] and an optional attached
//! [`MetricsRegistry`]) and `GET /events` (a chunked SSE stream of the
//! server's [`EventHub`]).

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hdsampler_core::{MetricsRegistry, TraceEvent};

use crate::events::EventHub;
use crate::http::{parse_request, write_response, Request, Response, DEFAULT_CHUNK_THRESHOLD};
use crate::site::SiteBehavior;

/// How a server multiplexes its connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Event-driven epoll reactor, one readiness loop per core: a
    /// connection costs a slab slot, not a thread, so one process holds
    /// 10k+ concurrent keep-alive connections. The default; falls back
    /// to [`ServeMode::Pool`] on platforms without epoll.
    #[default]
    Reactor,
    /// The original bounded worker pool: thread-per-in-flight-connection,
    /// concurrency capped at `workers + queue_depth`. Simpler blocking
    /// I/O; useful as a comparison baseline and on non-Linux hosts.
    Pool,
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`ServerHandle::addr`] for the chosen one).
    pub addr: String,
    /// Connection multiplexing strategy.
    pub mode: ServeMode,
    /// Reactor loops to run under [`ServeMode::Reactor`]; 0 means one
    /// per available core.
    pub reactor_threads: usize,
    /// Worker threads handling connections ([`ServeMode::Pool`]).
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// acceptor itself blocks (backpressure; [`ServeMode::Pool`]).
    pub queue_depth: usize,
    /// Idle time after which a keep-alive connection is closed; also the
    /// per-request read deadline (slowloris guard).
    pub keep_alive_timeout: Duration,
    /// Admission cap: connections past this many concurrently open are
    /// answered `503` + `Retry-After` and closed instead of served
    /// (both serve modes). `0` disables the cap.
    pub max_conns: usize,
    /// Bodies above this size are sent chunked instead of Content-Length.
    pub chunk_threshold: usize,
    /// Extra metrics appended to `/metrics` after the server's own
    /// counters — a registry handle shared with the embedding process
    /// (e.g. a sampling run's [`MetricsSink`](hdsampler_core::MetricsSink)
    /// aggregation). `None` serves [`ServerStats`] alone.
    pub metrics: Option<MetricsRegistry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            mode: ServeMode::default(),
            reactor_threads: 0,
            workers: 4,
            queue_depth: 8,
            keep_alive_timeout: Duration::from_secs(5),
            max_conns: 0,
            chunk_threshold: DEFAULT_CHUNK_THRESHOLD,
            metrics: None,
        }
    }
}

/// How many per-request log entries the server retains (a ring: old
/// entries fall off the front).
pub const REQUEST_LOG_CAP: usize = 1024;

/// One served request, as recorded in the server's ring log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestLogEntry {
    /// Server-wide request ordinal (1-based).
    pub seq: u64,
    /// Request target (path + query).
    pub target: String,
    /// The client's `x-hds-trace` id, empty if unstamped.
    pub trace: String,
    /// Response status written.
    pub status: u16,
}

/// Monotonic counters kept by a running server (plus the one gauge,
/// `open_connections`). Shared with the reactor module, which drives the
/// same counters from its readiness loops.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) responses_ok: AtomicU64,
    pub(crate) responses_client_error: AtomicU64,
    pub(crate) responses_server_error: AtomicU64,
    pub(crate) connections_dropped: AtomicU64,
    pub(crate) bytes_out: AtomicU64,
    pub(crate) bytes_in: AtomicU64,
    pub(crate) requests_landing: AtomicU64,
    pub(crate) requests_search: AtomicU64,
    pub(crate) requests_metrics: AtomicU64,
    pub(crate) requests_events: AtomicU64,
    pub(crate) requests_other: AtomicU64,
    /// `epoll_wait` returns across all reactor loops.
    pub(crate) reactor_wakeups: AtomicU64,
    /// Readiness events those wakeups delivered (ready-set sizes summed).
    pub(crate) reactor_ready_events: AtomicU64,
    /// Connections accepted by reactor loops (0 in pool mode).
    pub(crate) reactor_accepts: AtomicU64,
    /// Connections turned away at the admission cap (`503`).
    pub(crate) admission_rejects: AtomicU64,
    /// Reactor deadline timers that fired (idle close, slowloris 408,
    /// flush-window expiry).
    pub(crate) timers_fired: AtomicU64,
    /// Connections currently open (gauge: incremented on accept,
    /// decremented on close — both serve modes).
    pub(crate) open_connections: AtomicU64,
    log: Mutex<VecDeque<RequestLogEntry>>,
}

impl StatsInner {
    fn record_request(&self, seq: u64, target: &str, trace: &str, status: u16) {
        let mut log = self.log.lock().expect("request log lock");
        if log.len() >= REQUEST_LOG_CAP {
            log.pop_front();
        }
        log.push_back(RequestLogEntry {
            seq,
            target: target.to_string(),
            trace: trace.to_string(),
            status,
        });
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerStats {
    /// TCP connections accepted.
    pub connections: u64,
    /// Requests parsed off those connections.
    pub requests: u64,
    /// 2xx responses written.
    pub responses_ok: u64,
    /// 4xx responses written.
    pub responses_client_error: u64,
    /// 5xx responses written.
    pub responses_server_error: u64,
    /// Connections severed without a response (injected drops).
    pub connections_dropped: u64,
    /// Response bytes written (headers + bodies + chunk framing).
    pub bytes_out: u64,
    /// Request bytes read off accepted connections.
    pub bytes_in: u64,
    /// Requests for `/` (the rendered form landing page).
    pub requests_landing: u64,
    /// Requests for the form action (`/search…`).
    pub requests_search: u64,
    /// Requests for `/metrics`.
    pub requests_metrics: u64,
    /// Requests for `/events`.
    pub requests_events: u64,
    /// Requests for any other target.
    pub requests_other: u64,
    /// `epoll_wait` returns across all reactor loops (0 in pool mode).
    pub reactor_wakeups: u64,
    /// Readiness events delivered by those wakeups.
    pub reactor_ready_events: u64,
    /// Connections accepted by reactor loops.
    pub reactor_accepts: u64,
    /// Connections turned away at the admission cap (`503` +
    /// `Retry-After`; see [`ServerConfig::max_conns`]).
    pub admission_rejects: u64,
    /// Reactor deadline timers fired (idle close / slowloris / flush cap).
    pub timers_fired: u64,
    /// Connections open right now (gauge, both serve modes).
    pub open_connections: u64,
}

/// The HTTP/1.1 server: binds a listener and serves a mounted site.
pub struct HttpServer;

/// Listen backlog sized for connection storms. `TcpListener::bind`
/// hardcodes 128, which a C10K dial burst overflows in one scheduling
/// quantum — the kernel then drops SYNs and every affected client stalls
/// a full retransmission timeout (~1 s) before the connection lands. The
/// kernel clamps this to `net.core.somaxconn`.
const ACCEPT_BACKLOG: i32 = 4096;

/// Bind a listener with [`ACCEPT_BACKLOG`]. On Linux the socket is built
/// by hand (std offers no backlog knob); elsewhere — and for any address
/// that is not plain IPv4 — this falls back to `TcpListener::bind`.
fn bind_listener(addr: &str) -> std::io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::ToSocketAddrs;
        let parsed = addr.to_socket_addrs()?.find(|a| a.is_ipv4());
        if let Some(SocketAddr::V4(v4)) = parsed {
            return listen_sys::bind_v4(v4, ACCEPT_BACKLOG);
        }
    }
    TcpListener::bind(addr)
}

/// Raw socket/bind/listen syscalls: the only way to pick a listen
/// backlog with std alone. Mirrors the FFI style of
/// [`hdsampler_webform::reactor`].
#[cfg(target_os = "linux")]
mod listen_sys {
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::fd::{FromRawFd, OwnedFd};
    use std::os::raw::{c_int, c_void};

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0o2000000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;

    /// `struct sockaddr_in`: family, then port and address in network
    /// byte order, padded to the 16 bytes `bind(2)` expects.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port_be: u16,
        addr_be: u32,
        zero: [u8; 8],
    }

    extern "C" {
        fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
        fn setsockopt(
            fd: c_int,
            level: c_int,
            name: c_int,
            value: *const c_void,
            len: u32,
        ) -> c_int;
        fn bind(fd: c_int, addr: *const SockaddrIn, len: u32) -> c_int;
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }

    pub fn bind_v4(addr: SocketAddrV4, backlog: c_int) -> io::Result<TcpListener> {
        // SAFETY: plain syscalls on an fd we own; `fd` is wrapped in
        // `OwnedFd` immediately so every error path closes it.
        unsafe {
            let raw = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            if raw < 0 {
                return Err(io::Error::last_os_error());
            }
            let fd = OwnedFd::from_raw_fd(raw);
            let one: c_int = 1;
            if setsockopt(
                raw,
                SOL_SOCKET,
                SO_REUSEADDR,
                &one as *const c_int as *const c_void,
                std::mem::size_of::<c_int>() as u32,
            ) < 0
            {
                return Err(io::Error::last_os_error());
            }
            let sa = SockaddrIn {
                family: AF_INET as u16,
                port_be: addr.port().to_be(),
                addr_be: u32::from(*addr.ip()).to_be(),
                zero: [0; 8],
            };
            if bind(raw, &sa, std::mem::size_of::<SockaddrIn>() as u32) < 0 {
                return Err(io::Error::last_os_error());
            }
            if listen(raw, backlog) < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(TcpListener::from(fd))
        }
    }
}

impl HttpServer {
    /// Bind `cfg.addr` and serve `site` until [`ServerHandle::shutdown`].
    pub fn serve<S: SiteBehavior + 'static>(
        cfg: ServerConfig,
        site: Arc<S>,
    ) -> std::io::Result<ServerHandle> {
        let listener = bind_listener(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(StatsInner::default());
        let hub = Arc::new(EventHub::new());

        // The reactor is the default front half wherever epoll exists;
        // elsewhere (and on request) the bounded pool serves.
        #[cfg(target_os = "linux")]
        if cfg.mode == ServeMode::Reactor {
            let acceptor = crate::reactor::spawn(
                listener,
                site,
                Arc::clone(&stats),
                Arc::clone(&stop),
                Arc::clone(&hub),
                cfg,
            )?;
            return Ok(ServerHandle {
                addr,
                stop,
                stats,
                hub,
                acceptor: Some(acceptor),
            });
        }

        let acceptor = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            let hub = Arc::clone(&hub);
            let cfg = cfg.clone();
            std::thread::Builder::new()
                .name("hds-http-accept".into())
                .spawn(move || {
                    let mut pool = crate::pool::ThreadPool::new(cfg.workers, cfg.queue_depth);
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let site = Arc::clone(&site);
                        let stats = Arc::clone(&stats);
                        let stop = Arc::clone(&stop);
                        let hub = Arc::clone(&hub);
                        let cfg = cfg.clone();
                        if !pool.execute(move || {
                            serve_connection(stream, &*site, &stats, &stop, &hub, &cfg);
                        }) {
                            break;
                        }
                    }
                    // Joining here lets in-flight (and queued) connections
                    // finish their current requests before shutdown
                    // completes.
                    pool.shutdown();
                })?
        };

        Ok(ServerHandle {
            addr,
            stop,
            stats,
            hub,
            acceptor: Some(acceptor),
        })
    }
}

/// Handle to a running server: the bound address, live stats, shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    hub: Arc<EventHub>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address actually bound (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        snapshot_stats(&self.stats)
    }

    /// The server's event hub. The embedding process publishes into it
    /// (e.g. via [`BridgeSink`](crate::events::BridgeSink)) and every
    /// `/events` watcher receives the stream.
    pub fn events(&self) -> Arc<EventHub> {
        Arc::clone(&self.hub)
    }

    /// Snapshot of the per-request ring log (most recent
    /// [`REQUEST_LOG_CAP`]-ish entries, oldest first).
    pub fn request_log(&self) -> Vec<RequestLogEntry> {
        self.stats
            .log
            .lock()
            .expect("request log lock")
            .iter()
            .cloned()
            .collect()
    }

    /// Graceful shutdown: stop accepting, let every worker finish its
    /// in-flight request, close idle keep-alive connections, join all
    /// threads. Returns the final stats.
    pub fn shutdown(mut self) -> ServerStats {
        self.begin_shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        self.stats()
    }

    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in `accept`; a throwaway connection wakes it
        // so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// How often an idle keep-alive connection re-checks the stop flag; also
/// the reactor loops' maximum sleep between wakeups.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(100);

/// What one parsed request resolved to. Both serve modes feed requests
/// through [`handle_request`] and act on this — the pool by blocking
/// writes, the reactor by queueing bytes into the connection's machine —
/// which is what makes a sampling run against either mode
/// sequence-identical.
pub(crate) enum Handled {
    /// Write this response, then keep or close the connection.
    Response {
        resp: Response,
        keep_alive: bool,
        allow_chunked: bool,
    },
    /// `/events`: the connection becomes a dedicated SSE stream.
    EventStream,
    /// Injected drop: sever without writing a byte.
    Sever,
}

/// Count, route, and answer one parsed request: the serve-mode-agnostic
/// request semantics (sequence counters, per-route counters, the
/// body-bearing 400-and-close anti-smuggling rule, telemetry routes,
/// trace-id echo, request log and event publication).
pub(crate) fn handle_request(
    req: &Request,
    site: &dyn SiteBehavior,
    stats: &StatsInner,
    stop: &AtomicBool,
    hub: &EventHub,
    cfg: &ServerConfig,
) -> Handled {
    let seq = stats.requests.fetch_add(1, Ordering::Relaxed) + 1;
    let route_counter = match route_label(&req.target) {
        "landing" => &stats.requests_landing,
        "search" => &stats.requests_search,
        "metrics" => &stats.requests_metrics,
        "events" => &stats.requests_events,
        _ => &stats.requests_other,
    };
    route_counter.fetch_add(1, Ordering::Relaxed);
    let trace = req.header("x-hds-trace").unwrap_or("").to_string();

    // A body-bearing request would desynchronize the framing: this
    // server never reads bodies, so the unread bytes would be parsed
    // as the next request (request smuggling). Refuse AND close — a
    // keep-alive 400 here would serve the body as a request.
    let has_body = req
        .header("content-length")
        .is_some_and(|v| v.trim() != "0")
        || req.header("transfer-encoding").is_some();
    if has_body {
        return Handled::Response {
            resp: Response::text(
                400,
                "Bad Request",
                "400 request bodies are not accepted".into(),
            ),
            keep_alive: false,
            allow_chunked: false,
        };
    }

    // Chunked framing is HTTP/1.1-only; a 1.0 client gets Content-Length
    // regardless of body size.
    let keep_alive = req.wants_keep_alive() && !stop.load(Ordering::SeqCst);
    let allow_chunked = req.version == crate::http::HttpVersion::H11;

    // The telemetry plane answers before the mounted site sees the
    // request. `/events` takes over the whole connection: it streams
    // the hub until the server stops or the watcher hangs up.
    if req.method == "GET" && route_label(&req.target) == "events" {
        stats.responses_ok.fetch_add(1, Ordering::Relaxed);
        stats.record_request(seq, &req.target, &trace, 200);
        publish_request_event(hub, seq, &req.target, &trace, 200);
        return Handled::EventStream;
    }
    let mut resp = if req.method == "GET" && route_label(&req.target) == "metrics" {
        Response::text(
            200,
            "OK",
            render_server_metrics(&snapshot_stats(stats), cfg.metrics.as_ref()),
        )
    } else {
        route(site, req)
    };
    if resp.drop_connection {
        // Injected drop: sever without writing a byte — the peer sees
        // the close as a reset/EOF mid-exchange and must classify it
        // as transient.
        stats.connections_dropped.fetch_add(1, Ordering::Relaxed);
        return Handled::Sever;
    }
    // Echo the client's span id so both sides of the wire agree on
    // the request's identity, then log and broadcast the exchange.
    if !trace.is_empty() {
        resp.extra_headers
            .push(("x-hds-trace".into(), trace.clone()));
    }
    stats.record_request(seq, &req.target, &trace, resp.status);
    publish_request_event(hub, seq, &req.target, &trace, resp.status);
    Handled::Response {
        resp,
        keep_alive,
        allow_chunked,
    }
}

/// Decrements the open-connection gauge when a pool-mode connection's
/// serve function returns, however it exits.
struct OpenConnGuard<'a>(&'a AtomicU64);

impl Drop for OpenConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Close a rejected connection without risking an RST: half-close the
/// write side first, then drain whatever request bytes the peer already
/// sent (briefly), so the kernel never discards our in-flight response
/// over unread input. Shared by both serve modes' admission-cap paths.
pub(crate) fn lingering_close(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut tmp = [0u8; 1024];
    while matches!(stream.read(&mut tmp), Ok(n) if n > 0) {}
}

/// Serve one connection until it closes, errs, times out idle, or the
/// server shuts down.
fn serve_connection(
    stream: TcpStream,
    site: &dyn SiteBehavior,
    stats: &StatsInner,
    stop: &AtomicBool,
    hub: &EventHub,
    cfg: &ServerConfig,
) {
    stats.connections.fetch_add(1, Ordering::Relaxed);
    stats.open_connections.fetch_add(1, Ordering::Relaxed);
    let _open = OpenConnGuard(&stats.open_connections);
    let mut stream = stream;
    if stream.set_nodelay(true).is_err() || stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    // Admission cap: this connection's own increment is included in the
    // load, so strict `>` admits exactly `max_conns` concurrent peers.
    if cfg.max_conns > 0 && stats.open_connections.load(Ordering::Relaxed) > cfg.max_conns as u64 {
        stats.admission_rejects.fetch_add(1, Ordering::Relaxed);
        let mut resp = Response::text(503, "Service Unavailable", "503 server at capacity".into());
        resp.extra_headers.push(("Retry-After".into(), "1".into()));
        write_and_count(&mut stream, &resp, false, false, cfg, stats);
        lingering_close(stream);
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 16 * 1024];
    'conn: loop {
        // Phase 1: wait for one complete request.
        let deadline = Instant::now() + cfg.keep_alive_timeout;
        let (req, consumed) = loop {
            match parse_request(&buf) {
                Ok(Some(rc)) => break rc,
                Ok(None) => {}
                Err(e) => {
                    let (status, reason) = e.status();
                    let resp = Response::text(status, reason, format!("{status} {e}"));
                    write_and_count(&mut stream, &resp, false, false, cfg, stats);
                    break 'conn;
                }
            }
            // A quiet shutdown point: nothing (or only a partial request)
            // buffered and the server is stopping.
            if stop.load(Ordering::SeqCst) && buf.is_empty() {
                break 'conn;
            }
            if Instant::now() >= deadline {
                if !buf.is_empty() {
                    let resp = Response::text(408, "Request Timeout", "408 request timeout".into());
                    write_and_count(&mut stream, &resp, false, false, cfg, stats);
                }
                break 'conn;
            }
            match stream.read(&mut tmp) {
                Ok(0) => break 'conn,
                Ok(n) => {
                    buf.extend_from_slice(&tmp[..n]);
                    stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break 'conn,
            }
        };
        buf.drain(..consumed);

        // Phase 2: answer it.
        match handle_request(&req, site, stats, stop, hub, cfg) {
            Handled::Response {
                resp,
                keep_alive,
                allow_chunked,
            } => {
                if !write_and_count(&mut stream, &resp, keep_alive, allow_chunked, cfg, stats)
                    || !keep_alive
                {
                    break;
                }
            }
            Handled::EventStream => {
                stream_events(&mut stream, hub, stop, stats);
                break;
            }
            Handled::Sever => break,
        }
    }
}

/// Coarse route class of a request target (for per-route counters).
fn route_label(target: &str) -> &'static str {
    let path = target.split('?').next().unwrap_or("");
    match path {
        "/" => "landing",
        "/metrics" => "metrics",
        "/events" => "events",
        p if p.starts_with("/search") => "search",
        _ => "other",
    }
}

/// Read the counters without a [`ServerHandle`] (the `/metrics` route
/// runs inside a worker).
fn snapshot_stats(stats: &StatsInner) -> ServerStats {
    ServerStats {
        connections: stats.connections.load(Ordering::Relaxed),
        requests: stats.requests.load(Ordering::Relaxed),
        responses_ok: stats.responses_ok.load(Ordering::Relaxed),
        responses_client_error: stats.responses_client_error.load(Ordering::Relaxed),
        responses_server_error: stats.responses_server_error.load(Ordering::Relaxed),
        connections_dropped: stats.connections_dropped.load(Ordering::Relaxed),
        bytes_out: stats.bytes_out.load(Ordering::Relaxed),
        bytes_in: stats.bytes_in.load(Ordering::Relaxed),
        requests_landing: stats.requests_landing.load(Ordering::Relaxed),
        requests_search: stats.requests_search.load(Ordering::Relaxed),
        requests_metrics: stats.requests_metrics.load(Ordering::Relaxed),
        requests_events: stats.requests_events.load(Ordering::Relaxed),
        requests_other: stats.requests_other.load(Ordering::Relaxed),
        reactor_wakeups: stats.reactor_wakeups.load(Ordering::Relaxed),
        reactor_ready_events: stats.reactor_ready_events.load(Ordering::Relaxed),
        reactor_accepts: stats.reactor_accepts.load(Ordering::Relaxed),
        admission_rejects: stats.admission_rejects.load(Ordering::Relaxed),
        timers_fired: stats.timers_fired.load(Ordering::Relaxed),
        open_connections: stats.open_connections.load(Ordering::Relaxed),
    }
}

/// Broadcast one served request as a `kind: "request"` trace event.
fn publish_request_event(hub: &EventHub, seq: u64, target: &str, trace: &str, status: u16) {
    if hub.subscribers() == 0 {
        return;
    }
    hub.publish_trace(&TraceEvent {
        kind: "request".into(),
        detail: target.into(),
        tag: trace.into(),
        seq,
        code: u64::from(status),
        ..TraceEvent::default()
    });
}

/// Render [`ServerStats`] (and an optional attached registry) in
/// Prometheus text exposition format — the `GET /metrics` body. Every
/// line parses back through
/// [`parse_exposition`](hdsampler_core::parse_exposition).
pub fn render_server_metrics(stats: &ServerStats, registry: Option<&MetricsRegistry>) -> String {
    let mut out = String::new();
    let mut counter = |name: &str, value: u64| {
        out.push_str(&format!(
            "# TYPE {} counter\n{name} {value}\n",
            name.split('{').next().unwrap_or(name)
        ));
    };
    counter("hds_server_connections_total", stats.connections);
    counter("hds_server_requests_total", stats.requests);
    counter(
        "hds_server_connections_dropped_total",
        stats.connections_dropped,
    );
    counter("hds_server_bytes_out_total", stats.bytes_out);
    counter("hds_server_bytes_in_total", stats.bytes_in);
    counter("hds_server_reactor_wakeups_total", stats.reactor_wakeups);
    counter(
        "hds_server_reactor_ready_events_total",
        stats.reactor_ready_events,
    );
    counter("hds_server_reactor_accepts_total", stats.reactor_accepts);
    counter(
        "hds_server_admission_rejects_total",
        stats.admission_rejects,
    );
    counter("hds_server_timers_fired_total", stats.timers_fired);
    out.push_str(&format!(
        "# TYPE hds_server_open_connections gauge\nhds_server_open_connections {}\n",
        stats.open_connections
    ));
    out.push_str("# TYPE hds_server_responses_total counter\n");
    out.push_str(&format!(
        "hds_server_responses_total{{class=\"ok\"}} {}\n",
        stats.responses_ok
    ));
    out.push_str(&format!(
        "hds_server_responses_total{{class=\"client_error\"}} {}\n",
        stats.responses_client_error
    ));
    out.push_str(&format!(
        "hds_server_responses_total{{class=\"server_error\"}} {}\n",
        stats.responses_server_error
    ));
    out.push_str("# TYPE hds_server_route_requests_total counter\n");
    for (route, value) in [
        ("events", stats.requests_events),
        ("landing", stats.requests_landing),
        ("metrics", stats.requests_metrics),
        ("other", stats.requests_other),
        ("search", stats.requests_search),
    ] {
        out.push_str(&format!(
            "hds_server_route_requests_total{{route=\"{route}\"}} {value}\n"
        ));
    }
    if let Some(registry) = registry {
        out.push_str(&registry.render());
    }
    out
}

/// How often the `/events` stream emits a heartbeat comment while the
/// hub is quiet (keeps dead watchers detectable and the stream warm).
const EVENTS_HEARTBEAT_EVERY: u32 = 25;

/// Stream the hub over `stream` as chunked `text/event-stream` until the
/// server stops or the watcher hangs up.
pub(crate) fn stream_events(
    stream: &mut TcpStream,
    hub: &EventHub,
    stop: &AtomicBool,
    stats: &StatsInner,
) {
    let head = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                Cache-Control: no-cache\r\nConnection: close\r\n\
                Transfer-Encoding: chunked\r\n\r\n";
    let mut written = 0u64;
    if stream.write_all(head.as_bytes()).is_err() {
        return;
    }
    written += head.len() as u64;
    let rx = hub.subscribe();
    // An opening comment flushes the headers through any buffering and
    // tells the watcher the stream is live.
    written += write_chunk(stream, ": hds event stream\n\n").unwrap_or(0);
    let mut quiet = 0u32;
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(IDLE_POLL) {
            Ok(frame) => match write_chunk(stream, &frame) {
                Ok(n) => {
                    written += n;
                    quiet = 0;
                }
                Err(_) => break,
            },
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                quiet += 1;
                if quiet >= EVENTS_HEARTBEAT_EVERY {
                    quiet = 0;
                    match write_chunk(stream, ": hb\n\n") {
                        Ok(n) => written += n,
                        Err(_) => break,
                    }
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
        }
    }
    // Deliver everything published before the stop landed: a watcher
    // must see every event a local sink saw, shutdown races included.
    while let Ok(frame) = rx.try_recv() {
        match write_chunk(stream, &frame) {
            Ok(n) => written += n,
            Err(_) => break,
        }
    }
    if stream.write_all(b"0\r\n\r\n").is_ok() {
        written += 5;
    }
    stats.bytes_out.fetch_add(written, Ordering::Relaxed);
}

/// Write one chunked-transfer chunk carrying `text`; returns its framed
/// size in bytes.
fn write_chunk(stream: &mut TcpStream, text: &str) -> std::io::Result<u64> {
    let frame = format!("{:X}\r\n{text}\r\n", text.len());
    stream.write_all(frame.as_bytes())?;
    stream.flush()?;
    Ok(frame.len() as u64)
}

/// Method gate in front of the site.
fn route(site: &dyn SiteBehavior, req: &Request) -> Response {
    if req.method != "GET" {
        let mut resp = Response::text(
            405,
            "Method Not Allowed",
            format!("405 method `{}` not allowed (GET only)", req.method),
        );
        resp.extra_headers.push(("Allow".into(), "GET".into()));
        return resp;
    }
    site.get(&req.target)
}

/// Write a response, bump the status-class and byte counters; `false` when
/// the connection is no longer writable.
fn write_and_count(
    stream: &mut TcpStream,
    resp: &Response,
    keep_alive: bool,
    allow_chunked: bool,
    cfg: &ServerConfig,
    stats: &StatsInner,
) -> bool {
    let counter = match resp.status {
        200..=299 => &stats.responses_ok,
        400..=499 => &stats.responses_client_error,
        _ => &stats.responses_server_error,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let chunk_threshold = if allow_chunked {
        cfg.chunk_threshold
    } else {
        usize::MAX
    };
    match write_response(stream, resp, keep_alive, chunk_threshold) {
        Ok(n) => {
            stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
            true
        }
        Err(_) => false,
    }
}
