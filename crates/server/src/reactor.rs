//! Event-driven serve mode: an epoll readiness loop per core, each
//! multiplexing thousands of keep-alive connections through resumable
//! [`ConnMachine`]s — the server-side mirror of the client's
//! `WalkMachine` trick (state machines instead of stacks).
//!
//! The bounded worker pool ([`crate::pool`]) caps concurrency at
//! `workers + queue_depth` connections; everything beyond that waits in
//! the accept backlog. This module replaces the thread-per-connection
//! model with per-core loops over
//! [`Epoll`](hdsampler_webform::reactor::Epoll): a connection costs one
//! slab slot (a few KiB) instead of a stack, so one process holds 10k+
//! concurrent keep-alive connections — the C10K shape the cooperative
//! client drives.
//!
//! Semantics match the pool path by construction: both feed parsed
//! requests through the same [`handle_request`](crate::server) helper
//! and serialize responses with the same `write_response`, so a seeded
//! sampling run against either serve mode sees byte-identical pages in
//! identical order. The differences are purely mechanical:
//!
//! * slowloris/idle deadlines are reactor timers (a generation-stamped
//!   binary heap) instead of per-read timeouts;
//! * short writes park the connection with residual output in its
//!   machine and resume on the next writable event;
//! * `/events` watchers — blocking, long-lived — are handed off to a
//!   dedicated thread, exactly one per watcher, matching the pool mode's
//!   dedicate-a-worker behavior.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::events::EventHub;
use crate::http::{parse_request, write_response, Response};
use crate::server::{handle_request, stream_events, Handled, ServerConfig, StatsInner, IDLE_POLL};
use crate::site::SiteBehavior;

/// One connection's resumable serve state: accumulated request bytes in,
/// queued response bytes out, and whether the connection closes once the
/// output drains.
///
/// The machine is I/O-agnostic — [`write_some`](ConnMachine::write_some)
/// takes any [`Write`] — so tests can drive it through writers that
/// inject `WouldBlock` at arbitrary chunk boundaries and assert the
/// reassembled byte stream is identical to a blocking write.
#[derive(Debug, Default)]
pub struct ConnMachine {
    /// Unparsed request bytes read so far.
    pub buf: Vec<u8>,
    out: Vec<u8>,
    out_pos: usize,
    close_after_flush: bool,
}

/// Outcome of one [`ConnMachine::write_some`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteProgress {
    /// Every queued byte is on the wire.
    Done,
    /// The writer would block; residual bytes stay queued for the next
    /// writable event.
    Blocked,
}

impl ConnMachine {
    /// A fresh machine with nothing buffered.
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialize `resp` onto the output queue with exactly the framing
    /// the blocking path uses (`write_response` into the buffer), and
    /// arm close-after-flush when the exchange ends the connection.
    /// Returns the number of bytes queued.
    pub fn queue_response(
        &mut self,
        resp: &Response,
        keep_alive: bool,
        allow_chunked: bool,
        chunk_threshold: usize,
    ) -> usize {
        let threshold = if allow_chunked {
            chunk_threshold
        } else {
            usize::MAX
        };
        let before = self.out.len();
        write_response(&mut self.out, resp, keep_alive, threshold)
            .expect("writing into a Vec cannot fail");
        if !keep_alive {
            self.close_after_flush = true;
        }
        self.out.len() - before
    }

    /// Push queued output into `w` until done or it would block.
    /// `Interrupted` writes are retried; `Ok(0)` is an error (the peer
    /// cannot accept bytes but did not signal `WouldBlock`).
    pub fn write_some(&mut self, w: &mut impl Write) -> io::Result<WriteProgress> {
        while self.out_pos < self.out.len() {
            match w.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(WriteProgress::Blocked),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(WriteProgress::Done)
    }

    /// Whether response bytes are still queued for the wire.
    pub fn has_pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Whether the connection should close once the output drains.
    pub fn close_after_flush(&self) -> bool {
        self.close_after_flush
    }

    /// Arm close-after-flush (terminal responses queued externally).
    pub fn set_close_after_flush(&mut self) {
        self.close_after_flush = true;
    }
}

/// Spawn the reactor serve threads. The returned handle is the
/// supervisor: joining it joins every per-core loop, giving
/// [`ServerHandle::shutdown`](crate::server::ServerHandle::shutdown) the
/// same single-join semantics as the pool acceptor.
#[cfg(target_os = "linux")]
pub(crate) fn spawn<S: SiteBehavior + 'static>(
    listener: TcpListener,
    site: Arc<S>,
    stats: Arc<StatsInner>,
    stop: Arc<AtomicBool>,
    hub: Arc<EventHub>,
    cfg: ServerConfig,
) -> io::Result<JoinHandle<()>> {
    listener.set_nonblocking(true)?;
    let threads = if cfg.reactor_threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.reactor_threads
    };
    std::thread::Builder::new()
        .name("hds-reactor".into())
        .spawn(move || {
            let mut loops = Vec::with_capacity(threads);
            for i in 0..threads {
                // Every loop shares the listener's file description: the
                // kernel wakes all of them on a pending accept
                // (level-triggered) and the losers harvest `WouldBlock`.
                let Ok(listener) = listener.try_clone() else {
                    continue;
                };
                let site = Arc::clone(&site);
                let stats = Arc::clone(&stats);
                let stop = Arc::clone(&stop);
                let hub = Arc::clone(&hub);
                let cfg = cfg.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("hds-reactor-{i}"))
                    .spawn(move || reactor_loop(listener, &*site, &stats, &stop, &hub, &cfg));
                if let Ok(handle) = handle {
                    loops.push(handle);
                }
            }
            for handle in loops {
                let _ = handle.join();
            }
        })
}

#[cfg(target_os = "linux")]
struct ConnSlot {
    stream: TcpStream,
    machine: ConnMachine,
    /// Bumped whenever the deadline re-arms; timers stamped with an older
    /// generation are stale and skipped.
    gen: u64,
    /// The client half-closed; close once the output drains.
    eof: bool,
    /// Interest currently registered with the epoll set.
    wants_write: bool,
}

/// The reserved epoll token for the listener; connection slots map to
/// `token - 1`.
#[cfg(target_os = "linux")]
const LISTENER_TOKEN: u64 = 0;

#[cfg(target_os = "linux")]
fn reactor_loop(
    listener: TcpListener,
    site: &dyn SiteBehavior,
    stats: &Arc<StatsInner>,
    stop: &Arc<AtomicBool>,
    hub: &Arc<EventHub>,
    cfg: &ServerConfig,
) {
    use hdsampler_webform::reactor::{Epoll, Interest};
    use std::os::fd::AsRawFd;

    let Ok(ep) = Epoll::new() else { return };
    if ep
        .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::Read)
        .is_err()
    {
        return;
    }

    let mut slots: Vec<Option<ConnSlot>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut live = 0usize;
    // Min-heap of (fire-at, slot, generation) deadlines.
    let mut timers: BinaryHeap<Reverse<(Instant, usize, u64)>> = BinaryHeap::new();
    let mut events = Vec::new();
    let mut draining = false;
    let mut grace: Option<Instant> = None;

    let close_slot = |slots: &mut Vec<Option<ConnSlot>>,
                      free: &mut Vec<usize>,
                      live: &mut usize,
                      ep: &Epoll,
                      ix: usize| {
        if let Some(slot) = slots[ix].take() {
            // Deregister before the stream drops (and its fd closes):
            // see `Epoll::deregister` on fd-number reuse.
            let _ = ep.deregister(slot.stream.as_raw_fd());
            free.push(ix);
            *live -= 1;
            stats.open_connections.fetch_sub(1, Ordering::Relaxed);
        }
    };

    loop {
        if stop.load(Ordering::SeqCst) && !draining {
            draining = true;
            grace = Some(Instant::now() + cfg.keep_alive_timeout);
            let _ = ep.deregister(listener.as_raw_fd());
            // Quiet shutdown point, as in the pool path: connections with
            // no buffered request and nothing left to flush close now;
            // the rest finish their in-flight exchange.
            for ix in 0..slots.len() {
                let idle = slots[ix]
                    .as_ref()
                    .is_some_and(|s| s.machine.buf.is_empty() && !s.machine.has_pending_out());
                if idle {
                    close_slot(&mut slots, &mut free, &mut live, &ep, ix);
                }
            }
        }
        if draining {
            let expired = grace.is_some_and(|g| Instant::now() >= g);
            if live == 0 || expired {
                for ix in 0..slots.len() {
                    close_slot(&mut slots, &mut free, &mut live, &ep, ix);
                }
                return;
            }
        }

        let now = Instant::now();
        let mut timeout = IDLE_POLL;
        if let Some(Reverse((at, _, _))) = timers.peek() {
            timeout = timeout.min(at.saturating_duration_since(now));
        }
        // Round sub-millisecond waits *up*: epoll's granularity is 1 ms,
        // and truncating to 0 turns the last millisecond before every
        // pending deadline into a busy poll. Deadlines only need to fire
        // eventually, never early, so late-by-a-tick is fine.
        let timeout_ms = if timeout.is_zero() {
            0
        } else {
            timeout.as_millis().max(1) as i32
        };
        let n = ep.wait(&mut events, timeout_ms).unwrap_or(0);
        stats.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
        stats
            .reactor_ready_events
            .fetch_add(n as u64, Ordering::Relaxed);

        let ready: Vec<_> = events.iter().take(n).copied().collect();
        for ev in ready {
            if ev.token == LISTENER_TOKEN {
                if draining {
                    continue;
                }
                accept_ready(
                    &listener,
                    &ep,
                    &mut slots,
                    &mut free,
                    &mut live,
                    &mut timers,
                    stats,
                    stop,
                    cfg,
                );
                continue;
            }
            let ix = (ev.token - 1) as usize;
            if slots.get(ix).is_none_or(|s| s.is_none()) {
                continue;
            }
            let keep = drive_conn(
                &ep,
                slots[ix].as_mut().expect("slot checked live"),
                ix,
                &mut timers,
                ev.readable,
                site,
                stats,
                stop,
                hub,
                cfg,
            );
            match keep {
                Driven::Keep => {}
                Driven::Close => close_slot(&mut slots, &mut free, &mut live, &ep, ix),
                Driven::Detached => {
                    // The slot's stream moved to a dedicated thread; the
                    // fd was already deregistered and the gauge is now
                    // that thread's to decrement.
                    slots[ix] = None;
                    free.push(ix);
                    live -= 1;
                }
            }
        }

        // Fire due deadlines: idle keep-alive connections close, partial
        // requests get the slowloris 408, unflushed terminal responses
        // get a bounded flush window and then a hard close.
        let now = Instant::now();
        while let Some(&Reverse((at, ix, gen))) = timers.peek() {
            if at > now {
                break;
            }
            timers.pop();
            let must_close = {
                let Some(slot) = slots.get_mut(ix).and_then(|s| s.as_mut()) else {
                    continue;
                };
                if slot.gen != gen {
                    continue;
                }
                stats.timers_fired.fetch_add(1, Ordering::Relaxed);
                if slot.machine.close_after_flush() || slot.machine.buf.is_empty() {
                    // Flush window exhausted, or a clean idle timeout.
                    true
                } else {
                    // A partial request sat past the deadline: slowloris.
                    // Answer 408 and give the flush one more window.
                    let resp = Response::text(408, "Request Timeout", "408 request timeout".into());
                    let queued =
                        slot.machine
                            .queue_response(&resp, false, false, cfg.chunk_threshold);
                    stats.responses_client_error.fetch_add(1, Ordering::Relaxed);
                    stats.bytes_out.fetch_add(queued as u64, Ordering::Relaxed);
                    slot.gen += 1;
                    timers.push(Reverse((now + cfg.keep_alive_timeout, ix, slot.gen)));
                    match slot.machine.write_some(&mut slot.stream) {
                        Ok(WriteProgress::Done) | Err(_) => true,
                        Ok(WriteProgress::Blocked) => {
                            update_interest(&ep, slot, ix);
                            false
                        }
                    }
                }
            };
            if must_close {
                close_slot(&mut slots, &mut free, &mut live, &ep, ix);
            }
        }
    }
}

#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn accept_ready(
    listener: &TcpListener,
    ep: &hdsampler_webform::reactor::Epoll,
    slots: &mut Vec<Option<ConnSlot>>,
    free: &mut Vec<usize>,
    live: &mut usize,
    timers: &mut BinaryHeap<Reverse<(Instant, usize, u64)>>,
    stats: &StatsInner,
    stop: &AtomicBool,
    cfg: &ServerConfig,
) {
    use hdsampler_webform::reactor::Interest;
    use std::os::fd::AsRawFd;

    loop {
        // Re-checked per accept: `ServerHandle::shutdown` stores the stop
        // flag and then dials a wake-up connection; like the pool's
        // post-accept stop check, that dial (and anything racing it) must
        // not be counted or served.
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept failure (e.g. fd exhaustion): back off
                // one tick instead of spinning on the level-triggered
                // listener readiness.
                std::thread::sleep(Duration::from_millis(10));
                return;
            }
        };
        // Admission cap: turn the connection away before it costs a
        // slot. The socket is still blocking here (nonblocking is set
        // below), so the tiny 503 writes synchronously.
        if cfg.max_conns > 0
            && stats.open_connections.load(Ordering::Relaxed) >= cfg.max_conns as u64
        {
            let mut stream = stream;
            stats.connections.fetch_add(1, Ordering::Relaxed);
            stats.admission_rejects.fetch_add(1, Ordering::Relaxed);
            stats.responses_server_error.fetch_add(1, Ordering::Relaxed);
            let mut resp = crate::http::Response::text(
                503,
                "Service Unavailable",
                "503 server at capacity".into(),
            );
            resp.extra_headers.push(("Retry-After".into(), "1".into()));
            if let Ok(n) = crate::http::write_response(&mut stream, &resp, false, usize::MAX) {
                stats.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
            }
            crate::server::lingering_close(stream);
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        stats.connections.fetch_add(1, Ordering::Relaxed);
        stats.reactor_accepts.fetch_add(1, Ordering::Relaxed);
        stats.open_connections.fetch_add(1, Ordering::Relaxed);
        let ix = free.pop().unwrap_or_else(|| {
            slots.push(None);
            slots.len() - 1
        });
        let fd = stream.as_raw_fd();
        let slot = ConnSlot {
            stream,
            machine: ConnMachine::new(),
            gen: 0,
            eof: false,
            wants_write: false,
        };
        if ep.register(fd, ix as u64 + 1, Interest::Read).is_err() {
            free.push(ix);
            stats.open_connections.fetch_sub(1, Ordering::Relaxed);
            continue;
        }
        timers.push(Reverse((
            Instant::now() + cfg.keep_alive_timeout,
            ix,
            slot.gen,
        )));
        slots[ix] = Some(slot);
        *live += 1;
    }
}

#[cfg(target_os = "linux")]
enum Driven {
    Keep,
    Close,
    /// `/events`: the stream left the slab for a dedicated thread.
    Detached,
}

/// Resume one connection on a readiness event: flush pending output,
/// drain the socket, parse and answer every complete request, decide
/// whether the connection lives on.
#[cfg(target_os = "linux")]
#[allow(clippy::too_many_arguments)]
fn drive_conn(
    ep: &hdsampler_webform::reactor::Epoll,
    slot: &mut ConnSlot,
    ix: usize,
    timers: &mut BinaryHeap<Reverse<(Instant, usize, u64)>>,
    readable: bool,
    site: &dyn SiteBehavior,
    stats: &Arc<StatsInner>,
    stop: &Arc<AtomicBool>,
    hub: &Arc<EventHub>,
    cfg: &ServerConfig,
) -> Driven {
    use std::os::fd::AsRawFd;

    // Short-write resumption first: a writable event (or any wakeup with
    // queued output) continues the interrupted response.
    if slot.machine.has_pending_out() && slot.machine.write_some(&mut slot.stream).is_err() {
        return Driven::Close;
    }

    if readable {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            match slot.stream.read(&mut tmp) {
                Ok(0) => {
                    slot.eof = true;
                    break;
                }
                Ok(n) => {
                    slot.machine.buf.extend_from_slice(&tmp[..n]);
                    stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Driven::Close,
            }
        }
    }

    // Answer every complete request already buffered (pipelining).
    while !slot.machine.close_after_flush() {
        match parse_request(&slot.machine.buf) {
            Ok(None) => break,
            Ok(Some((req, consumed))) => {
                slot.machine.buf.drain(..consumed);
                match handle_request(&req, site, stats, stop, hub, cfg) {
                    Handled::Response {
                        resp,
                        keep_alive,
                        allow_chunked,
                    } => {
                        let counter = match resp.status {
                            200..=299 => &stats.responses_ok,
                            400..=499 => &stats.responses_client_error,
                            _ => &stats.responses_server_error,
                        };
                        counter.fetch_add(1, Ordering::Relaxed);
                        let queued = slot.machine.queue_response(
                            &resp,
                            keep_alive,
                            allow_chunked,
                            cfg.chunk_threshold,
                        );
                        stats.bytes_out.fetch_add(queued as u64, Ordering::Relaxed);
                        // Keep-alive reset: the idle clock restarts once
                        // a request is answered.
                        slot.gen += 1;
                        timers.push(Reverse((
                            Instant::now() + cfg.keep_alive_timeout,
                            ix,
                            slot.gen,
                        )));
                    }
                    Handled::EventStream => {
                        // Hand the connection to a dedicated blocking
                        // thread — the SSE stream outlives any readiness
                        // loop iteration. Deregister before anything
                        // else so the fd leaves this epoll set while we
                        // still own it.
                        let _ = ep.deregister(slot.stream.as_raw_fd());
                        let Ok(stream) = slot.stream.try_clone() else {
                            return Driven::Close;
                        };
                        let _ = stream.set_nonblocking(false);
                        let stats = Arc::clone(stats);
                        let stop = Arc::clone(stop);
                        let hub = Arc::clone(hub);
                        let spawned = std::thread::Builder::new().name("hds-events".into()).spawn(
                            move || {
                                let mut stream = stream;
                                stream_events(&mut stream, &hub, &stop, &stats);
                                stats.open_connections.fetch_sub(1, Ordering::Relaxed);
                            },
                        );
                        if spawned.is_err() {
                            return Driven::Close;
                        }
                        return Driven::Detached;
                    }
                    Handled::Sever => return Driven::Close,
                }
            }
            Err(e) => {
                let (status, reason) = e.status();
                let resp = Response::text(status, reason, format!("{status} {e}"));
                let counter = match status {
                    400..=499 => &stats.responses_client_error,
                    _ => &stats.responses_server_error,
                };
                counter.fetch_add(1, Ordering::Relaxed);
                let queued = slot
                    .machine
                    .queue_response(&resp, false, false, cfg.chunk_threshold);
                stats.bytes_out.fetch_add(queued as u64, Ordering::Relaxed);
                break;
            }
        }
    }

    match slot.machine.write_some(&mut slot.stream) {
        Ok(WriteProgress::Done) => {
            if slot.machine.close_after_flush() || slot.eof {
                return Driven::Close;
            }
        }
        Ok(WriteProgress::Blocked) => {
            if slot.eof && !slot.machine.has_pending_out() {
                return Driven::Close;
            }
        }
        Err(_) => return Driven::Close,
    }
    update_interest(ep, slot, ix);
    Driven::Keep
}

/// Keep the epoll registration's interest in step with whether the
/// connection has output waiting for a writable event.
#[cfg(target_os = "linux")]
fn update_interest(ep: &hdsampler_webform::reactor::Epoll, slot: &mut ConnSlot, ix: usize) {
    use hdsampler_webform::reactor::Interest;
    use std::os::fd::AsRawFd;

    let wants_write = slot.machine.has_pending_out();
    if wants_write != slot.wants_write {
        let interest = if wants_write {
            Interest::ReadWrite
        } else {
            Interest::Read
        };
        // Token is positional and unchanged; only the mask moves.
        let _ = ep.modify(slot.stream.as_raw_fd(), ix as u64 + 1, interest);
        slot.wants_write = wants_write;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_and_drain_round_trips() {
        let resp = Response::text(200, "OK", "hello".into());
        let mut machine = ConnMachine::new();
        let queued = machine.queue_response(&resp, true, true, 1024);
        assert!(queued > 0);
        assert!(machine.has_pending_out());
        let mut sink = Vec::new();
        assert_eq!(machine.write_some(&mut sink).unwrap(), WriteProgress::Done);
        assert_eq!(sink.len(), queued);
        assert!(!machine.has_pending_out());
        assert!(!machine.close_after_flush());

        // The queued bytes are exactly what the blocking path writes.
        let mut direct = Vec::new();
        write_response(&mut direct, &resp, true, 1024).unwrap();
        assert_eq!(sink, direct);
    }

    #[test]
    fn close_response_arms_close_after_flush() {
        let resp = Response::text(400, "Bad Request", "nope".into());
        let mut machine = ConnMachine::new();
        machine.queue_response(&resp, false, false, 1024);
        assert!(machine.close_after_flush());
    }
}
