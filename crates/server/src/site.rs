//! Mounting a site behind the HTTP front door.
//!
//! [`SiteBehavior`] is the server's view of a site: a GET target in, a
//! [`Response`] out. The blanket implementation for
//! [`LocalSite`](hdsampler_webform::LocalSite) delegates the
//! route/parse/execute pipeline to [`LocalSite::fetch`] itself — the
//! in-process semantics (200/400/404 outcomes and their exact message
//! texts, as defined by `WebForm::parse_request_path`) hold over HTTP *by
//! construction*, not by a re-implementation kept in sync by hand.
//!
//! Status mapping:
//!
//! | site outcome | HTTP |
//! |---|---|
//! | results page | `200` (HTML) |
//! | landing page (`/`, when the action is elsewhere) | `200` (HTML) |
//! | path off the form action | `404`, body = in-process message |
//! | unparseable query string | `400`, body = in-process message |
//! | backend budget exhausted | `429` + `x-hds-issued` header |
//! | any other backend error | `500` |
//!
//! Wrapping a site in [`Adversary`](crate::adversary::Adversary) adds
//! three injected outcomes on top of this table: a rate-limit `429`
//! (`x-hds-error: throttled`, `Retry-After`, *no* `x-hds-issued`), a
//! transient `503` (`x-hds-error: transient`), and a severed connection
//! (no response at all) — all transient to a retrying client, unlike the
//! terminal budget `429`.

use hdsampler_model::{FormInterface, InterfaceError};
use hdsampler_webform::render::escape_html;
use hdsampler_webform::{LocalSite, Transport};

use crate::http::Response;

/// Marker header naming the machine-readable error class on non-200
/// responses; [`HttpTransport`](hdsampler_webform::HttpTransport) uses it
/// (plus [`ISSUED_HEADER`]) to rebuild the in-process `InterfaceError`.
pub const ERROR_HEADER: &str = "x-hds-error";
/// Header carrying the charged-query count on budget-exhausted responses.
pub const ISSUED_HEADER: &str = "x-hds-issued";

/// A site the HTTP server can mount: GET target in, response out.
pub trait SiteBehavior: Send + Sync {
    /// Respond to a GET for `target` (path plus optional query string).
    fn get(&self, target: &str) -> Response;
}

impl<S: SiteBehavior + ?Sized> SiteBehavior for &S {
    fn get(&self, target: &str) -> Response {
        (**self).get(target)
    }
}

impl<S: SiteBehavior + ?Sized> SiteBehavior for std::sync::Arc<S> {
    fn get(&self, target: &str) -> Response {
        (**self).get(target)
    }
}

/// The landing page: the self-describing form (schema, top-k limit and
/// count support all machine-readable) wrapped in a minimal document, so
/// one fetch of `/` is enough for a client to configure itself.
fn landing_page<F: FormInterface>(site: &LocalSite<F>) -> String {
    let fp = hdsampler_core::l2::SiteFingerprint::derive(
        site.backend().schema(),
        site.backend().result_limit(),
        site.backend().supports_count(),
        site.backend().dataset_digest(),
    );
    format!(
        "<html><head><title>HDSampler search</title></head><body>\n\
         <h1>Search listings</h1>\n{}\
         <p>{} listings behind a top-{} interface.</p>\n\
         </body></html>\n",
        site.form().render_html_with_fingerprint(
            site.backend().result_limit(),
            site.backend().supports_count(),
            fp.as_str(),
        ),
        escape_html(&site.backend().schema().domain_product().to_string()),
        site.backend().result_limit(),
    )
}

impl<F: FormInterface> SiteBehavior for LocalSite<F> {
    fn get(&self, target: &str) -> Response {
        let route = target.split_once('?').map_or(target, |(p, _)| p);
        if route == "/" && self.form().action() != "/" {
            return Response::html(200, "OK", landing_page(self));
        }
        match self.fetch(target) {
            Ok(page) => Response::html(200, "OK", page),
            Err(InterfaceError::Transport(msg)) if msg.starts_with("404") => {
                let mut resp = Response::text(404, "Not Found", msg);
                resp.extra_headers
                    .push((ERROR_HEADER.into(), "not-found".into()));
                resp
            }
            Err(InterfaceError::SchemaMismatch(msg)) => {
                let mut resp = Response::text(400, "Bad Request", msg);
                resp.extra_headers
                    .push((ERROR_HEADER.into(), "schema-mismatch".into()));
                resp
            }
            Err(InterfaceError::Transport(msg)) if msg.starts_with("400") => {
                let mut resp = Response::text(400, "Bad Request", msg);
                resp.extra_headers
                    .push((ERROR_HEADER.into(), "bad-request".into()));
                resp
            }
            Err(InterfaceError::BudgetExhausted { issued }) => {
                let mut resp = Response::text(
                    429,
                    "Too Many Requests",
                    InterfaceError::BudgetExhausted { issued }.to_string(),
                );
                resp.extra_headers
                    .push((ERROR_HEADER.into(), "budget-exhausted".into()));
                resp.extra_headers
                    .push((ISSUED_HEADER.into(), issued.to_string()));
                resp
            }
            Err(e) => {
                let mut resp = Response::text(
                    500,
                    "Internal Server Error",
                    format!("500 internal error: {e}"),
                );
                resp.extra_headers
                    .push((ERROR_HEADER.into(), "internal".into()));
                resp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn site(budget: Option<u64>) -> LocalSite<HiddenDb> {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema)).result_limit(1);
        if let Some(q) = budget {
            b = b.query_budget(q);
        }
        for v in [0u16, 0, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        LocalSite::new(b.finish(), schema)
    }

    #[test]
    fn statuses_mirror_local_site_outcomes() {
        let site = site(None);
        assert_eq!(site.get("/").status, 200);
        assert_eq!(site.get("/search?make=Honda").status, 200);
        assert_eq!(site.get("/search").status, 200);
        assert_eq!(site.get("/nosuchpage").status, 404);
        assert_eq!(site.get("/search?bogus=1").status, 400);
    }

    #[test]
    fn error_bodies_carry_the_in_process_message() {
        let site = site(None);
        let body = String::from_utf8(site.get("/nosuchpage?make=Honda").body).unwrap();
        let direct = site.fetch("/nosuchpage?make=Honda").unwrap_err();
        assert_eq!(
            direct,
            InterfaceError::Transport(body),
            "HTTP body must be byte-identical to the in-process error"
        );
    }

    #[test]
    fn landing_page_renders_the_form() {
        let site = site(None);
        let body = String::from_utf8(site.get("/").body).unwrap();
        assert!(body.contains("<form action=\"/search\""));
        assert!(body.contains(">Honda</option>"));
    }

    #[test]
    fn landing_page_is_discoverable() {
        // The served `/` must scrape back to the exact schema plus the
        // site's k and count support — the contract `sample http://addr`
        // relies on when run with zero schema flags.
        let site = site(None);
        let body = String::from_utf8(site.get("/").body).unwrap();
        let form = hdsampler_webform::scrape_form_page(&body).unwrap();
        assert_eq!(&form.schema, site.form().schema().as_ref());
        assert_eq!(form.action, "/search");
        assert_eq!(form.k, 1);
        assert!(!form.supports_count);
    }

    #[test]
    fn schema_mismatch_maps_to_400_with_marker() {
        let site = site(None);
        let resp = site.get("/search?bogus=1");
        assert_eq!(resp.status, 400);
        assert!(resp
            .extra_headers
            .iter()
            .any(|(n, v)| n == ERROR_HEADER && v == "schema-mismatch"));
        let body = String::from_utf8(resp.body).unwrap();
        match site.fetch("/search?bogus=1").unwrap_err() {
            InterfaceError::SchemaMismatch(msg) => assert_eq!(msg, body),
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_maps_to_429_with_headers() {
        let site = site(Some(1));
        assert_eq!(site.get("/search?make=Honda").status, 200);
        let resp = site.get("/search?make=Toyota");
        assert_eq!(resp.status, 429);
        assert!(resp
            .extra_headers
            .iter()
            .any(|(n, v)| n == ERROR_HEADER && v == "budget-exhausted"));
        assert!(resp
            .extra_headers
            .iter()
            .any(|(n, v)| n == ISSUED_HEADER && v == "1"));
    }
}
