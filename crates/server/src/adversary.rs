//! [`Adversary`]: seeded fault injection in front of any mounted site.
//!
//! The server half of the chaos layer (the client half is
//! [`ChaosTransport`](hdsampler_webform::ChaosTransport), which injects
//! the same schedule wire-free). Wrapping a [`SiteBehavior`] in an
//! `Adversary` turns a well-behaved front door into a hostile one:
//!
//! * **drop** — the connection is severed without writing a byte
//!   ([`Response::sever`]; the server counts it as a dropped connection);
//! * **throttle** — `429 Too Many Requests` with `Retry-After` (seconds)
//!   and `x-hds-retry-after-ms` (exact), *without* the `x-hds-issued`
//!   budget header — so clients can tell "back off" from "go away";
//! * **transient** — `503 Service Unavailable`;
//! * **slow-start / jitter** — real (capped) sleeps before answering;
//! * **count-noise** — successful pages get their "About N results"
//!   banner rewritten by the episode's factor.
//!
//! The schedule is a pure function of `(spec.seed, request index)`
//! ([`ChaosSpec::decide`]): restarting the server with the same spec
//! replays the identical fault sequence. Faulted requests never reach the
//! wrapped site, so the backend's query budget is only charged for
//! requests actually served — mirroring the client-side decorator's
//! accounting exactly.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use hdsampler_webform::chaos::rewrite_count_banner;
use hdsampler_webform::{ChaosCounters, ChaosSpec, Fault};

use crate::http::Response;
use crate::site::{SiteBehavior, ERROR_HEADER};

/// Longest single injected sleep: chaos must slow a request down, not
/// wedge a worker for the whole keep-alive window.
const MAX_INJECT_SLEEP: Duration = Duration::from_millis(2_000);

/// Fault-injecting decorator over any [`SiteBehavior`].
#[derive(Debug)]
pub struct Adversary<S> {
    inner: S,
    spec: ChaosSpec,
    /// Global request index: position in the fault schedule.
    requests: AtomicU64,
    throttles: AtomicU64,
    transient_fails: AtomicU64,
    drops: AtomicU64,
    noisy_pages: AtomicU64,
    extra_delay_ms: AtomicU64,
}

impl<S: SiteBehavior> Adversary<S> {
    /// Wrap `inner` with the fault schedule `spec`.
    pub fn new(inner: S, spec: ChaosSpec) -> Self {
        Adversary {
            inner,
            spec,
            requests: AtomicU64::new(0),
            throttles: AtomicU64::new(0),
            transient_fails: AtomicU64::new(0),
            drops: AtomicU64::new(0),
            noisy_pages: AtomicU64::new(0),
            extra_delay_ms: AtomicU64::new(0),
        }
    }

    /// The fault schedule.
    pub fn spec(&self) -> &ChaosSpec {
        &self.spec
    }

    /// The wrapped site.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Fault totals so far.
    pub fn counters(&self) -> ChaosCounters {
        ChaosCounters {
            throttles: self.throttles.load(Ordering::Relaxed),
            transient_fails: self.transient_fails.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            noisy_pages: self.noisy_pages.load(Ordering::Relaxed),
            extra_delay_ms: self.extra_delay_ms.load(Ordering::Relaxed),
        }
    }
}

impl<S: SiteBehavior> SiteBehavior for Adversary<S> {
    fn get(&self, target: &str) -> Response {
        let n = self.requests.fetch_add(1, Ordering::Relaxed);
        let d = self.spec.decide(n);
        let delay = self.spec.latency_ms + d.extra_delay_ms;
        if delay > 0 {
            self.extra_delay_ms
                .fetch_add(d.extra_delay_ms, Ordering::Relaxed);
            // Real wire, real wait — but capped, so a generous virtual
            // spec cannot wedge a worker thread.
            std::thread::sleep(Duration::from_millis(delay).min(MAX_INJECT_SLEEP));
        }
        match d.fault {
            Fault::Drop => {
                self.drops.fetch_add(1, Ordering::Relaxed);
                Response::sever()
            }
            Fault::Throttle { retry_after_ms } => {
                self.throttles.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::text(
                    429,
                    "Too Many Requests",
                    format!("429 rate limited: retry after {retry_after_ms} ms"),
                );
                resp.extra_headers
                    .push((ERROR_HEADER.into(), "throttled".into()));
                // Standard coarse header plus the exact interval; never
                // `x-hds-issued`, which would read as budget exhaustion.
                resp.extra_headers.push((
                    "Retry-After".into(),
                    retry_after_ms.div_ceil(1_000).max(1).to_string(),
                ));
                resp.extra_headers
                    .push(("x-hds-retry-after-ms".into(), retry_after_ms.to_string()));
                resp
            }
            Fault::Transient => {
                self.transient_fails.fetch_add(1, Ordering::Relaxed);
                let mut resp = Response::text(
                    503,
                    "Service Unavailable",
                    "503 service unavailable (injected)".into(),
                );
                resp.extra_headers
                    .push((ERROR_HEADER.into(), "transient".into()));
                resp
            }
            Fault::None => {
                let mut resp = self.inner.get(target);
                if let Some(factor) = d.count_factor {
                    if resp.status == 200 {
                        if let Ok(page) = std::str::from_utf8(&resp.body) {
                            let (noisy, rewritten) = rewrite_count_banner(page, factor);
                            if rewritten {
                                self.noisy_pages.fetch_add(1, Ordering::Relaxed);
                                resp.body = noisy.into_bytes();
                            }
                        }
                    }
                }
                resp
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_hidden_db::{CountMode, HiddenDb};
    use hdsampler_model::{Attribute, FormInterface, SchemaBuilder, Tuple};
    use hdsampler_webform::LocalSite;
    use std::sync::Arc;

    fn site() -> LocalSite<HiddenDb> {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::categorical("make", ["Toyota", "Honda"]).unwrap())
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema))
            .result_limit(1)
            .count_mode(CountMode::Exact);
        for v in [0u16, 0, 1] {
            b.push(&Tuple::new(&schema, vec![v], vec![]).unwrap())
                .unwrap();
        }
        LocalSite::new(b.finish(), schema)
    }

    #[test]
    fn throttle_responses_are_retryable_not_budget() {
        let adv = Adversary::new(
            site(),
            ChaosSpec {
                throttle: 1.0,
                retry_after_ms: 250,
                ..ChaosSpec::default()
            },
        );
        let resp = adv.get("/search?make=Honda");
        assert_eq!(resp.status, 429);
        let header = |name: &str| {
            resp.extra_headers
                .iter()
                .find(|(n, _)| n.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        assert_eq!(header(ERROR_HEADER), Some("throttled"));
        assert_eq!(header("retry-after"), Some("1"), "ceil(250ms) = 1 s");
        assert_eq!(header("x-hds-retry-after-ms"), Some("250"));
        assert_eq!(
            header(crate::site::ISSUED_HEADER),
            None,
            "a throttle must never look like budget exhaustion"
        );
        assert_eq!(adv.counters().throttles, 1);
    }

    #[test]
    fn drops_sever_and_faults_spare_the_backend() {
        let adv = Adversary::new(
            site(),
            ChaosSpec {
                drop: 1.0,
                ..ChaosSpec::default()
            },
        );
        for _ in 0..5 {
            assert!(adv.get("/search?make=Honda").drop_connection);
        }
        assert_eq!(adv.counters().drops, 5);
        assert_eq!(
            adv.inner().backend().queries_issued(),
            0,
            "faulted requests never reach the backend"
        );
    }

    #[test]
    fn transient_faults_answer_503() {
        let adv = Adversary::new(
            site(),
            ChaosSpec {
                fail: 1.0,
                ..ChaosSpec::default()
            },
        );
        let resp = adv.get("/search?make=Honda");
        assert_eq!(resp.status, 503);
        assert!(resp
            .extra_headers
            .iter()
            .any(|(n, v)| n == ERROR_HEADER && v == "transient"));
        assert_eq!(adv.counters().transient_fails, 1);
    }

    #[test]
    fn count_noise_rewrites_successful_pages_only() {
        let spec = ChaosSpec {
            count_noise: 1.0,
            seed: 3,
            ..ChaosSpec::default()
        };
        let factor = spec.decide(0).count_factor.expect("noise gate open");
        let adv = Adversary::new(site(), spec);
        let clean = adv.inner().get("/search?make=Toyota");
        let noisy = adv.get("/search?make=Toyota");
        assert_eq!(noisy.status, 200);
        let clean = String::from_utf8(clean.body).unwrap();
        let noisy = String::from_utf8(noisy.body).unwrap();
        let expect = (2.0 * factor).round() as u64;
        assert!(
            noisy.contains(&format!("About {expect} results")),
            "banner rewritten by {factor}: {noisy}"
        );
        assert_eq!(
            clean.replace("About 2", ""),
            noisy.replace(&format!("About {expect}"), ""),
            "only the banner changes"
        );
        assert_eq!(adv.counters().noisy_pages, 1);
        // Error pages pass through untouched.
        let err = adv.get("/nosuchpage");
        assert_eq!(err.status, 404);
    }

    #[test]
    fn same_seed_replays_the_same_schedule() {
        let spec = ChaosSpec {
            seed: 9,
            throttle: 0.3,
            fail: 0.2,
            drop: 0.1,
            ..ChaosSpec::default()
        };
        let run = || {
            let adv = Adversary::new(site(), spec.clone());
            let seq: Vec<(u16, bool)> = (0..100)
                .map(|_| {
                    let r = adv.get("/search?make=Honda");
                    (r.status, r.drop_connection)
                })
                .collect();
            (seq, adv.counters())
        };
        let (a, ca) = run();
        let (b, cb) = run();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.throttles > 0 && ca.transient_fails > 0 && ca.drops > 0);
    }
}
