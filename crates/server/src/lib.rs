//! # hdsampler-server
//!
//! A real HTTP front door for a hidden database's web form — the
//! deployment half the original demo ran on Apache + PHP (§3.5), rebuilt
//! dependency-free on `std::net`.
//!
//! After PR 2 every byte still moved in-process: `LocalSite` was a
//! function call and `LatencyTransport` billed virtual clocks. This crate
//! puts the form behind a real socket: a hand-rolled HTTP/1.1 server
//! (request parsing with hard limits, keep-alive, `Content-Length` and
//! chunked responses, a bounded thread-per-connection pool with graceful
//! shutdown) that mounts any [`SiteBehavior`] — in particular any
//! [`LocalSite`](hdsampler_webform::LocalSite) — as real GET endpoints:
//!
//! * `/` — the rendered form (the demo's Figure 3 landing page);
//! * the form action (e.g. `/search?make=Honda`) — results pages, with
//!   200/400/404 semantics *identical* to `WebForm::parse_request_path`
//!   (the mounting delegates to `LocalSite::fetch`, so parity holds by
//!   construction);
//! * budget exhaustion — `429` with machine-readable headers the
//!   [`HttpTransport`](hdsampler_webform::HttpTransport) client maps back
//!   onto `InterfaceError::BudgetExhausted`.
//!
//! The unmodified walker/driver/session stack samples a served site
//! end-to-end over loopback TCP via `HttpTransport`; `hdsampler serve`
//! plus `hdsampler sample --remote <addr>` is the two-terminal quickstart.
//!
//! * [`http`] — request parsing, response writing, limits;
//! * [`site`] — [`SiteBehavior`] and the `LocalSite` mounting;
//! * [`adversary`] — [`Adversary`], seeded fault injection (throttles,
//!   transient 5xx, dropped connections, slow starts, count noise) in
//!   front of any mounted site;
//! * [`pool`] — the bounded worker pool (backpressure via a bounded
//!   queue, not unbounded thread growth);
//! * [`events`] — the [`EventHub`] broadcast behind `GET /events`
//!   (chunked SSE) and the [`BridgeSink`] that mirrors a local sampling
//!   run's accepted samples onto it;
//! * [`reactor`] — the event-driven serve mode: epoll readiness loops
//!   (one per core) multiplexing resumable per-connection
//!   [`ConnMachine`]s, the C10K front half and the default
//!   [`ServeMode`];
//! * [`server`] — the accept loop, keep-alive connection handling,
//!   graceful shutdown, live [`ServerStats`] (per-route counters,
//!   bytes in/out, a per-request ring log with echoed `x-hds-trace`
//!   ids), and the built-in `GET /metrics` Prometheus exposition.

pub mod adversary;
pub mod events;
pub mod http;
pub mod pool;
pub mod reactor;
pub mod server;
pub mod site;

pub use adversary::Adversary;
pub use events::{BridgeSink, EventHub};
pub use http::{parse_request, write_response, HttpVersion, Request, RequestError, Response};
pub use pool::ThreadPool;
pub use reactor::{ConnMachine, WriteProgress};
pub use server::{
    render_server_metrics, HttpServer, RequestLogEntry, ServeMode, ServerConfig, ServerHandle,
    ServerStats, REQUEST_LOG_CAP,
};
pub use site::{SiteBehavior, ERROR_HEADER, ISSUED_HEADER};
