//! EXP-M1 — fleet-scale driving: one process, S sites, W walkers per
//! site, a virtual 100 ms wire.
//!
//! The paper's cost model is round trips; PR 1 made per-probe CPU cheap
//! enough that the wire dominates. This experiment measures what the
//! per-connection clock model buys: the concurrent [`MultiSiteDriver`]
//! overlaps every site's walkers' requests (fleet time = max over
//! connections), while the serial baseline drives the same sites one
//! after another on a single connection each (fleet time = sum over
//! fetches). Per-site query budgets and the per-site shared history cache
//! are active end-to-end.
//!
//! Expected shape: time-to-N-samples for the whole fleet is roughly flat
//! in S for the concurrent driver and linear in S for the serial one —
//! ≥ 4× apart at S = 16 (the acceptance bar; walker parallelism pushes it
//! far higher).

use std::sync::Arc;

use hdsampler_bench::{f, section, table};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::FormInterface;
use hdsampler_webform::{
    FleetConfig, LatencyTransport, LocalSite, MultiSiteDriver, SiteTask, WebFormInterface,
};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

const LATENCY_MS: u64 = 100;
const TARGET_PER_SITE: usize = 100;
const BUDGET_PER_SITE: u64 = 5_000;
const WALKERS_PER_SITE: usize = 4;

fn build_fleet(sites: usize) -> Vec<SiteTask<LatencyTransport<LocalSite<HiddenDb>>>> {
    (0..sites)
        .map(|i| {
            let db = WorkloadSpec::vehicles(
                VehiclesSpec::compact(1_000, 40 + i as u64),
                DbConfig::no_counts()
                    .with_k(100)
                    .with_budget(BUDGET_PER_SITE),
            )
            .build();
            let schema = Arc::new(db.schema().clone());
            let k = db.result_limit();
            let site = LocalSite::new(db, Arc::clone(&schema));
            let wire = LatencyTransport::new(site, LATENCY_MS);
            SiteTask::new(
                format!("site-{i}"),
                WebFormInterface::new(wire, schema, k, false),
            )
        })
        .collect()
}

fn main() {
    section("EXP-M1: concurrent multi-site driving vs the serial baseline");
    println!(
        "  {TARGET_PER_SITE} samples/site, {LATENCY_MS} ms virtual latency, \
         {WALKERS_PER_SITE} walkers/site, budget {BUDGET_PER_SITE} fetches/site"
    );

    let driver = MultiSiteDriver::new(FleetConfig {
        walkers_per_site: WALKERS_PER_SITE,
        target_per_site: TARGET_PER_SITE,
        seed: 2009,
        slider: 0.4,
        ..FleetConfig::default()
    });

    let mut rows = Vec::new();
    let mut speedup_at = Vec::new();
    for sites in [1usize, 4, 16] {
        let serial = driver.run_serial(&mut build_fleet(sites));
        let concurrent = driver.run_concurrent(&mut build_fleet(sites));
        assert_eq!(serial.total_samples(), sites * TARGET_PER_SITE);
        assert_eq!(concurrent.total_samples(), sites * TARGET_PER_SITE);
        for report in [&serial, &concurrent] {
            for site in &report.sites {
                assert!(
                    site.queries_issued <= BUDGET_PER_SITE,
                    "per-site budget enforced"
                );
                assert!(site.history_hits > 0, "shared history cache active");
            }
        }
        let speedup = serial.fleet_elapsed_ms as f64 / concurrent.fleet_elapsed_ms as f64;
        speedup_at.push((sites, speedup));
        rows.push(vec![
            sites.to_string(),
            f(serial.fleet_elapsed_ms as f64 / 1_000.0, 1),
            f(concurrent.fleet_elapsed_ms as f64 / 1_000.0, 1),
            f(serial.samples_per_vsec(), 1),
            f(concurrent.samples_per_vsec(), 1),
            f(speedup, 1),
        ]);
    }
    table(
        &[
            "sites",
            "serial s",
            "concurrent s",
            "serial smp/s",
            "concurrent smp/s",
            "speedup",
        ],
        &rows,
    );

    let (_, s16) = *speedup_at.last().expect("three fleet sizes");
    assert!(
        s16 >= 4.0,
        "concurrent driver must beat serial ≥4× at 16 sites, got {s16:.1}×"
    );
    assert!(
        speedup_at.windows(2).all(|w| w[1].1 >= w[0].1 * 0.8),
        "speedup must grow (roughly) with fleet size: {speedup_at:?}"
    );
    println!(
        "  PASS: {s16:.1}× at S = 16 — the fleet's time-to-{TARGET_PER_SITE}-samples \
         is set by the slowest site, not the sum of all sites"
    );
}
