//! EXP-T3 — §3.2's optimization (ref [2]): "this module also keeps track
//! of the query history and results to ensure that the random query
//! generation process accumulates savings by not issuing the same query
//! twice, or queries whose results can be inferred from the query
//! history."
//!
//! Reproduced shape: the history cache absorbs the bulk of requests — the
//! memo rule dominates (walks share upper-tree prefixes), the containment
//! rules add more on scrambled orders — while the produced sample stream
//! is *identical* to the uncached run (inference is exact).

use hdsampler_bench::{collect, f, section, table};
use hdsampler_core::{CachingExecutor, DirectExecutor, HdsSampler, SamplerConfig};

use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn run(variant: &str, spec: VehiclesSpec, k: usize, samples: usize) {
    section(&format!("EXP-T3: history savings on {variant}"));
    let make_db = || WorkloadSpec::vehicles(spec, DbConfig::no_counts().with_k(k)).build();

    // Without cache.
    let db_direct = make_db();
    let mut plain =
        HdsSampler::new(DirectExecutor::new(&db_direct), SamplerConfig::seeded(99)).unwrap();
    let (set_plain, stats_plain) = collect(&mut plain, samples);

    // With cache (same seed, same site).
    let db_cached = make_db();
    let mut cached =
        HdsSampler::new(CachingExecutor::new(&db_cached), SamplerConfig::seeded(99)).unwrap();
    let (set_cached, stats_cached) = collect(&mut cached, samples);
    let hist = cached.executor().history_stats();

    // Exactness: the cache must not change the sample stream.
    assert_eq!(
        set_plain.keys(),
        set_cached.keys(),
        "inference must be invisible"
    );

    let saved = stats_cached.queries_saved();
    table(
        &[
            "configuration",
            "requests",
            "charged queries",
            "queries/sample",
        ],
        &[
            vec![
                "no cache".into(),
                stats_plain.requests.to_string(),
                stats_plain.queries_issued.to_string(),
                f(stats_plain.queries_per_sample(), 2),
            ],
            vec![
                "history cache".into(),
                stats_cached.requests.to_string(),
                stats_cached.queries_issued.to_string(),
                f(stats_cached.queries_per_sample(), 2),
            ],
        ],
    );
    println!(
        "\n  savings: {saved} of {} requests ({:.1}%) answered from history",
        stats_cached.requests,
        stats_cached.savings_rate() * 100.0
    );
    table(
        &["rule", "hits"],
        &[
            vec!["1: exact memo".into(), hist.memo_hits.to_string()],
            vec!["2: empty-subset".into(), hist.empty_rule_hits.to_string()],
            vec![
                "3: overflow-superset".into(),
                hist.overflow_rule_hits.to_string(),
            ],
            vec![
                "4: valid-ancestor filter".into(),
                hist.filter_rule_hits.to_string(),
            ],
            vec!["(charged misses)".into(), hist.misses.to_string()],
        ],
    );
    assert!(
        stats_cached.queries_issued < stats_plain.queries_issued / 2,
        "cache must at least halve the charged queries"
    );
    assert!(hist.empty_rule_hits + hist.overflow_rule_hits + hist.filter_rule_hits > 0);
    println!("  PASS: identical samples, >50% of charges avoided");
}

fn main() {
    run(
        "compact vehicles (N=8k, k=250)",
        VehiclesSpec::compact(8_000, 5),
        250,
        400,
    );
    run(
        "full vehicles (N=20k, k=1000)",
        VehiclesSpec::full(20_000, 5),
        1000,
        200,
    );
}
