//! EXP-T6 — the count-reporting spectrum (§3.1 + ref [2]).
//!
//! Google Base prints *approximate* count banners which the demo
//! deliberately "ignored for the purpose of this system" (§3.1). This
//! experiment shows the whole spectrum and thereby justifies that choice:
//!
//! * **exact counts** (ref [2]'s setting): the count-weighted walk is
//!   perfectly uniform with zero rejections and the lowest query cost;
//! * **noisy counts** (Google Base's setting): the same walk becomes
//!   biased — unless the importance weights our implementation attaches
//!   are used, which removes most of the bias;
//! * **no counts**: HIDDEN-DB-SAMPLER at C = 1 — costlier than exact-count
//!   walking but immune to banner noise, which is exactly why the demo
//!   ignored Google's banners.

use hdsampler_bench::{collect, f, section, table, tuple_frequencies};
use hdsampler_core::{CountWalkSampler, DirectExecutor, HdsSampler, SamplerConfig};
use hdsampler_estimator::{skew_coefficient, tv_distance, Histogram};
use hdsampler_hidden_db::CountMode;
use hdsampler_model::FormInterface;
use hdsampler_workload::vehicles::N_JAPANESE_MAKES;
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    section("EXP-T6: exact vs noisy vs absent count banners (§3.1, ref [2])");
    let n_tuples = 8_000;
    let k = 250;
    let samples = 500;
    let spec = VehiclesSpec::compact(n_tuples, 55);

    let build = |mode: CountMode| {
        WorkloadSpec::vehicles(
            spec,
            DbConfig {
                count_mode: mode,
                ..DbConfig::no_counts().with_k(k)
            },
        )
        .build()
    };

    let mut rows = Vec::new();
    let mut japanese_unweighted_noisy = f64::NAN;
    let mut japanese_weighted_noisy = f64::NAN;
    let mut exact_cost = f64::NAN;
    let hds_cost;

    // --- count-weighted walk on exact and noisy banners ----------------
    for (label, mode) in [
        ("COUNT exact", CountMode::Exact),
        (
            "COUNT noisy σ=0.15",
            CountMode::Noisy {
                sigma: 0.15,
                seed: 9,
            },
        ),
        (
            "COUNT noisy σ=0.50",
            CountMode::Noisy {
                sigma: 0.50,
                seed: 9,
            },
        ),
    ] {
        let db = build(mode);
        let schema = db.schema().clone();
        let make = schema.attr_by_name("make").unwrap();
        let truth = db.oracle().marginal(make);
        let truth_share: f64 = truth[..N_JAPANESE_MAKES].iter().sum();

        let mut sampler =
            CountWalkSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(13)).unwrap();
        let (set, stats) = collect(&mut sampler, samples);
        let hist = Histogram::from_rows(&schema, make, set.rows());
        let weighted = Histogram::from_weighted(
            &schema,
            make,
            set.samples().iter().map(|s| (&s.row, s.weight)),
        );
        let tv_plain = tv_distance(&hist.proportions(), &truth);
        let tv_weighted = tv_distance(&weighted.proportions(), &truth);
        let freqs = tuple_frequencies(&db, &set);
        let skew = skew_coefficient(&freqs, n_tuples, set.len() as u64);

        if label.contains("0.50") {
            let unw: f64 = hist.proportions()[..N_JAPANESE_MAKES].iter().sum();
            let w: f64 = weighted.proportions()[..N_JAPANESE_MAKES].iter().sum();
            japanese_unweighted_noisy = (unw - truth_share).abs();
            japanese_weighted_noisy = (w - truth_share).abs();
        }
        if label == "COUNT exact" {
            exact_cost = stats.queries_per_sample();
        }
        rows.push(vec![
            label.into(),
            f(stats.queries_per_sample(), 2),
            stats.rejected.to_string(),
            f(tv_plain, 4),
            f(tv_weighted, 4),
            f(skew, 3),
        ]);
    }

    // --- HDS without counts (the demo's actual configuration) ----------
    {
        let db = build(CountMode::Absent);
        let schema = db.schema().clone();
        let make = schema.attr_by_name("make").unwrap();
        let truth = db.oracle().marginal(make);
        let mut sampler =
            HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(13)).unwrap();
        let (set, stats) = collect(&mut sampler, samples);
        let hist = Histogram::from_rows(&schema, make, set.rows());
        let freqs = tuple_frequencies(&db, &set);
        hds_cost = stats.queries_per_sample();
        rows.push(vec![
            "HDS C=1 (no counts)".into(),
            f(stats.queries_per_sample(), 2),
            stats.rejected.to_string(),
            f(tv_distance(&hist.proportions(), &truth), 4),
            "—".into(),
            f(skew_coefficient(&freqs, n_tuples, set.len() as u64), 3),
        ]);
    }

    table(
        &[
            "sampler",
            "queries/sample",
            "rejections",
            "TV(make)",
            "TV weighted",
            "skew coeff",
        ],
        &rows,
    );
    println!(
        "\n  Japanese-share |error| under σ=0.50 noise: unweighted {:.2}pp vs weighted {:.2}pp",
        japanese_unweighted_noisy * 100.0,
        japanese_weighted_noisy * 100.0
    );

    assert!(
        exact_cost < hds_cost,
        "exact counts beat rejection sampling"
    );
    println!(
        "  PASS: exact counts are cheapest & uniform; noisy counts bias the walk \
         (importance weights mitigate); ignoring noisy banners (HDS) is sound"
    );
}
