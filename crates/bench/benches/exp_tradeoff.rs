//! EXP-T1 — §3.1 "Performance v/s accuracy tradeoffs": the slider between
//! "highest efficiency" and "lowest skew", i.e. the scaling factor C of
//! the acceptance–rejection module (§3.3).
//!
//! Reproduced shape: walking left→right, walks/sample and queries/sample
//! fall monotonically while skew (tuple-level skew coefficient and
//! marginal TV distance) rises. Run on two data sets: the compact vehicles
//! site and an iid Boolean database (the SIGMOD'07 data model).

use hdsampler_bench::{collect, f, section, table, tuple_frequencies};
use hdsampler_core::{DirectExecutor, HdsSampler, SamplerConfig};
use hdsampler_estimator::{skew_coefficient, tv_distance, Histogram};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::{AttrId, FormInterface};
use hdsampler_workload::{DataSpec, DbConfig, VehiclesSpec, WorkloadSpec};

fn sweep(name: &str, db: &HiddenDb, attr: AttrId, samples: usize) {
    section(&format!("EXP-T1: slider sweep on {name}"));
    let schema = db.schema().clone();
    let truth = db.oracle().marginal(attr);
    let n_tuples = db.n_tuples();

    let mut rows = Vec::new();
    let mut costs = Vec::new();
    let mut skews = Vec::new();
    for position in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut sampler = HdsSampler::new(
            DirectExecutor::new(db),
            SamplerConfig::seeded(42).with_slider(position),
        )
        .unwrap();
        let (set, stats) = collect(&mut sampler, samples);
        let hist = Histogram::from_rows(&schema, attr, set.rows());
        let tv = tv_distance(&hist.proportions(), &truth);
        let freqs = tuple_frequencies(db, &set);
        let skew = skew_coefficient(&freqs, n_tuples, set.len() as u64);
        costs.push(stats.queries_per_sample());
        skews.push(skew);
        rows.push(vec![
            f(position, 2),
            f(sampler.c_factor(), 1),
            f(stats.walks_per_sample(), 2),
            f(stats.queries_per_sample(), 2),
            f(stats.acceptance_rate(), 3),
            f(tv, 4),
            f(skew, 3),
        ]);
    }
    table(
        &[
            "slider",
            "C",
            "walks/sample",
            "queries/sample",
            "accept rate",
            "TV",
            "skew coeff",
        ],
        &rows,
    );

    assert!(
        costs.first().unwrap() > costs.last().unwrap(),
        "efficiency must improve toward slider = 1"
    );
    assert!(
        skews.last().unwrap() > skews.first().unwrap(),
        "skew must grow toward slider = 1"
    );
    println!("  PASS: cost falls and skew rises along the slider");
}

fn main() {
    let vehicles = WorkloadSpec::vehicles(
        VehiclesSpec::compact(8_000, 11),
        DbConfig::no_counts().with_k(250),
    )
    .build();
    let year = vehicles.schema().attr_by_name("year").unwrap();
    sweep("compact vehicles (N=8k, k=250)", &vehicles, year, 400);

    let boolean = WorkloadSpec {
        data: DataSpec::BooleanIid {
            m: 14,
            n: 3_000,
            p: 0.5,
        },
        db: DbConfig::no_counts().with_k(20),
        seed: 3,
    }
    .build();
    sweep("Boolean iid (m=14, N=3k, k=20)", &boolean, AttrId(0), 400);
}
