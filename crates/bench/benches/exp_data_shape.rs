//! EXP-T8 — sensitivity to the shape of the hidden data (§4: the local
//! simulated database exists precisely so "the effectiveness of the
//! sampler" can be demonstrated against full ground truth).
//!
//! Three sweeps:
//! 1. **Boolean density** `p`: how dead-end rate and cost react to the
//!    fraction of 1-bits (sparser data ⇒ more dead ends ⇒ higher cost);
//! 2. **Zipfian value skew** `θ`: heavier tails concentrate tuples on
//!    popular paths — per-sample cost stays roughly flat (popular branches
//!    terminate earlier, rare branches dead-end more often);
//! 3. **Duplicate density** (N/B): the documented limitation — when many
//!    tuples share full attribute vectors, acceptance clipping at C = 1
//!    under-samples dense cells and the popular-make share is
//!    under-estimated; the effect grows with N/B and shrinks with k.

use hdsampler_bench::{collect, f, section, table};
use hdsampler_core::{DirectExecutor, HdsSampler, SamplerConfig};
use hdsampler_estimator::{tv_distance, Histogram};
use hdsampler_model::{AttrId, FormInterface};
use hdsampler_workload::vehicles::N_JAPANESE_MAKES;
use hdsampler_workload::{DataSpec, DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    let samples = 300;

    // ---- 1. Boolean density sweep -------------------------------------
    section("EXP-T8a: Boolean database, 1-bit density sweep (m=16, N=3k, k=20)");
    let mut rows = Vec::new();
    for p in [0.1, 0.3, 0.5] {
        let db = WorkloadSpec {
            data: DataSpec::BooleanIid { m: 16, n: 3_000, p },
            db: DbConfig::no_counts().with_k(20),
            seed: 8,
        }
        .build();
        let truth = db.oracle().marginal(AttrId(0));
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(4)).unwrap();
        let (set, stats) = collect(&mut s, samples);
        let hist = Histogram::from_rows(db.schema(), AttrId(0), set.rows());
        rows.push(vec![
            f(p, 1),
            f(stats.queries_per_sample(), 2),
            f(stats.dead_ends as f64 / stats.walks as f64, 3),
            f(tv_distance(&hist.proportions(), &truth), 4),
        ]);
    }
    table(&["p", "queries/sample", "dead-end rate", "TV(a1)"], &rows);

    // ---- 2. Zipf exponent sweep ----------------------------------------
    section("EXP-T8b: categorical database, Zipf(θ) value-skew sweep (8×6 domains, N=4k, k=50)");
    let mut rows = Vec::new();
    for theta in [0.0, 0.5, 1.0, 1.5] {
        let db = WorkloadSpec {
            data: DataSpec::ZipfCategorical {
                domain_sizes: vec![6; 8],
                n: 4_000,
                theta,
            },
            db: DbConfig::no_counts().with_k(50),
            seed: 12,
        }
        .build();
        let truth = db.oracle().marginal(AttrId(0));
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(4)).unwrap();
        let (set, stats) = collect(&mut s, samples);
        let hist = Histogram::from_rows(db.schema(), AttrId(0), set.rows());
        rows.push(vec![
            f(theta, 1),
            f(stats.queries_per_sample(), 2),
            f(stats.dead_ends as f64 / stats.walks as f64, 3),
            f(tv_distance(&hist.proportions(), &truth), 4),
        ]);
    }
    table(&["θ", "queries/sample", "dead-end rate", "TV(c0)"], &rows);

    // ---- 3. Duplicate density: the distinct-tuples assumption ----------
    section("EXP-T8c: duplicate density N/B and the C=1 clipping bias (compact vehicles, k=250)");
    println!(
        "  B = 77,760 cells; ref [1] assumes distinct tuples. As N/B grows, crowded\n  \
         cells exceed their acceptance budget and popular (Japanese) makes are\n  \
         under-sampled even at the lowest-skew slider position:\n"
    );
    let mut rows = Vec::new();
    let mut biases = Vec::new();
    for n in [2_000usize, 8_000, 30_000] {
        let db = WorkloadSpec::vehicles(
            VehiclesSpec::compact(n, 33),
            DbConfig::no_counts().with_k(250),
        )
        .build();
        let make = db.schema().attr_by_name("make").unwrap();
        let truth: f64 = db.oracle().marginal(make)[..N_JAPANESE_MAKES].iter().sum();
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(4)).unwrap();
        let (set, stats) = collect(&mut s, 600);
        let hist = Histogram::from_rows(db.schema(), make, set.rows());
        let est: f64 = hist.proportions()[..N_JAPANESE_MAKES].iter().sum();
        let bias = est - truth;
        biases.push(bias);
        rows.push(vec![
            n.to_string(),
            f(n as f64 / 77_760.0, 3),
            format!("{:.2}pp", bias * 100.0),
            f(stats.queries_per_sample(), 2),
        ]);
    }
    table(
        &["N", "N/B", "Japanese-share bias", "queries/sample"],
        &rows,
    );

    assert!(
        biases[0].abs() < 0.05,
        "sparse data is near-unbiased: {biases:?}"
    );
    assert!(
        biases.last().unwrap() < &(-0.02),
        "dense data under-samples popular makes: {biases:?}"
    );
    println!(
        "\n  PASS: the distinct-tuples assumption matters — dense duplicates bias C=1\n  \
         sampling downward on popular values (documented limitation, DESIGN.md)"
    );
}
