//! EXP-T4 — §1's motivating aggregate: "if one wants to learn the
//! percentage of Japanese cars in the dealer's inventory, a very small
//! number of uniform random samples … can provide a quite accurate
//! answer", plus §3.4's aggregate console (COUNT/SUM/AVG).
//!
//! Reproduced shape: relative error of the aggregates shrinks like
//! 1/√samples and the nominal-95 % confidence intervals cover the truth at
//! roughly the nominal rate; a few hundred samples suffice for
//! percentage-level accuracy — with total query counts that would take
//! minutes, not the days a crawl needs.

use hdsampler_bench::{collect, f, section, table};
use hdsampler_core::{CachingExecutor, HdsSampler, SamplerConfig};
use hdsampler_estimator::Estimator;
use hdsampler_model::FormInterface;
use hdsampler_workload::vehicles::{is_japanese_make, N_JAPANESE_MAKES};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    section("EXP-T4: aggregate accuracy vs number of samples (§1, §3.4)");
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(4_000, 21),
        DbConfig::no_counts().with_k(100),
    )
    .build();
    let schema = db.schema().clone();
    let make = schema.attr_by_name("make").unwrap();
    let price = schema.measure_by_name("price_usd").unwrap();
    let truth_share: f64 = db.oracle().marginal(make)[..N_JAPANESE_MAKES].iter().sum();
    let truth_avg = db
        .oracle()
        .avg(&hdsampler_model::ConjunctiveQuery::empty(), price)
        .expect("non-empty db");

    let repetitions = 15;
    let mut rows = Vec::new();
    let mut share_errors_by_n = Vec::new();
    for target in [50usize, 100, 200, 400, 800] {
        let mut share_err = 0.0;
        let mut share_cover = 0;
        let mut avg_err = 0.0;
        let mut avg_cover = 0;
        let mut queries = 0.0;
        for rep in 0..repetitions {
            let mut sampler = HdsSampler::new(
                CachingExecutor::new(&db),
                SamplerConfig::seeded(1000 + rep as u64),
            )
            .unwrap();
            let (set, stats) = collect(&mut sampler, target);
            let est = Estimator::new(&set);
            let share = est.proportion(|r| is_japanese_make(r.values[0] as usize));
            let avg = est.avg(price, |_| true);
            share_err += (share.value - truth_share).abs();
            avg_err += (avg.value - truth_avg).abs() / truth_avg;
            share_cover += usize::from(share.covers(truth_share));
            avg_cover += usize::from(avg.covers(truth_avg));
            queries += stats.queries_issued as f64;
        }
        let r = repetitions as f64;
        share_errors_by_n.push(share_err / r);
        rows.push(vec![
            target.to_string(),
            format!("{:.2}pp", share_err / r * 100.0),
            format!("{}/{}", share_cover, repetitions),
            format!("{:.2}%", avg_err / r * 100.0),
            format!("{}/{}", avg_cover, repetitions),
            f(queries / r, 0),
        ]);
    }
    println!(
        "\n  truth: Japanese share = {:.2}%, AVG(price) = ${:.0}\n",
        truth_share * 100.0,
        truth_avg
    );
    table(
        &[
            "samples",
            "share |err| (mean)",
            "share CI cover",
            "AVG rel err",
            "AVG CI cover",
            "queries (mean)",
        ],
        &rows,
    );

    let first = share_errors_by_n[0];
    let last = *share_errors_by_n.last().unwrap();
    assert!(
        last < first,
        "error must shrink with samples: {share_errors_by_n:?}"
    );
    assert!(last < 0.03, "800 samples give percentage-level accuracy");
    println!("  PASS: error decays with samples; a few hundred samples ⇒ ±1–2pp accuracy");
}
