//! EXP-F4 — Figure 4 + §3.4 "Results Validation": marginal histograms from
//! HDSampler, validated against BRUTE-FORCE-SAMPLER and (because the data
//! source is locally simulated, §4) against the full ground truth.
//!
//! Paper claims reproduced:
//! * HDSampler's sampled marginals track the truth closely;
//! * BRUTE-FORCE-SAMPLER agrees (it is provably uniform) but costs an
//!   order of magnitude more queries per sample — "extremely slow and thus
//!   cannot be used in practice";
//! * naively scraping the site's first page is badly biased.

use hdsampler_bench::{collect, f, section, table};
use hdsampler_core::{BruteForceSampler, DirectExecutor, HdsSampler, SamplerConfig};
use hdsampler_estimator::{tv_distance, Histogram, MarginalComparison};
use hdsampler_model::{ConjunctiveQuery, FormInterface};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    section("EXP-F4: sampled marginal histograms vs brute force vs truth (Figure 4, §3.4)");

    // Compact vehicles: B = 77 760 cells, sparse enough for brute force.
    let n_tuples = 8_000;
    let k = 250;
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(n_tuples, 404),
        DbConfig::no_counts().with_k(k),
    )
    .build();
    let schema = db.schema().clone();
    let make = schema.attr_by_name("make").unwrap();
    let truth = db.oracle().marginal(make);
    let samples_per_method = 500;

    // HDSampler at C = 1 (lowest-skew end of the slider).
    let mut hds = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(7)).unwrap();
    let (hds_samples, hds_stats) = collect(&mut hds, samples_per_method);
    let hds_hist = Histogram::from_rows(&schema, make, hds_samples.rows());

    // BRUTE-FORCE-SAMPLER (provably uniform reference).
    let mut brute =
        BruteForceSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(8)).unwrap();
    let (brute_samples, brute_stats) = collect(&mut brute, samples_per_method);
    let brute_hist = Histogram::from_rows(&schema, make, brute_samples.rows());

    // Naive baseline: the site's first page. The site ranks by freshness,
    // so the naive bias concentrates on the `year` attribute.
    let year = schema.attr_by_name("year").unwrap();
    let truth_year = db.oracle().marginal(year);
    let first_page = db.execute(&ConjunctiveQuery::empty()).unwrap();
    let page_hist = Histogram::from_rows(&schema, make, first_page.rows.iter());
    let page_year = Histogram::from_rows(&schema, year, first_page.rows.iter());
    let hds_year = Histogram::from_rows(&schema, year, hds_samples.rows());

    // Figure 4 style table for `make`.
    let hds_p = hds_hist.proportions();
    let brute_p = brute_hist.proportions();
    let page_p = page_hist.proportions();
    let mut order: Vec<usize> = (0..truth.len()).collect();
    order.sort_by(|&a, &b| truth[b].partial_cmp(&truth[a]).unwrap());
    let rows: Vec<Vec<String>> = order
        .iter()
        .take(10)
        .map(|&v| {
            vec![
                schema.attr_unchecked(make).label(v as u16).into_owned(),
                format!("{:.2}%", truth[v] * 100.0),
                format!("{:.2}%", hds_p[v] * 100.0),
                format!("{:.2}%", brute_p[v] * 100.0),
                format!("{:.2}%", page_p[v] * 100.0),
            ]
        })
        .collect();
    table(
        &["make", "truth", "HDSampler", "brute force", "first page"],
        &rows,
    );

    section("distance to truth and query cost");
    let metric_rows = vec![
        vec![
            "HDSampler (C=1)".into(),
            f(tv_distance(&hds_p, &truth), 4),
            f(hds_stats.queries_per_sample(), 1),
            hds_stats.queries_issued.to_string(),
        ],
        vec![
            "BRUTE-FORCE".into(),
            f(tv_distance(&brute_p, &truth), 4),
            f(brute_stats.queries_per_sample(), 1),
            brute_stats.queries_issued.to_string(),
        ],
        vec![
            "first page (naive)".into(),
            f(tv_distance(&page_p, &truth), 4),
            "0.0".into(),
            "1".into(),
        ],
    ];
    table(
        &["method", "TV(make)", "queries/sample", "total queries"],
        &metric_rows,
    );
    println!(
        "\n  ranking bias (site sorts by freshness): TV(year) first page = {} vs HDSampler = {}",
        f(tv_distance(&page_year.proportions(), &truth_year), 4),
        f(tv_distance(&hds_year.proportions(), &truth_year), 4)
    );

    // Secondary attributes, HDSampler only (the demo lets the audience
    // request any attribute's histogram).
    for name in ["year", "price", "body"] {
        let attr = schema.attr_by_name(name).unwrap();
        let hist = Histogram::from_rows(&schema, attr, hds_samples.rows());
        let cmp = MarginalComparison::new(
            &schema,
            attr,
            hist.proportions(),
            db.oracle().marginal(attr),
        );
        println!("\n{}", cmp.render(0.04));
    }

    // Shape assertions (the claims, not exact numbers).
    let tv_hds = tv_distance(&hds_p, &truth);
    let tv_brute = tv_distance(&brute_p, &truth);
    let tv_page_year = tv_distance(&page_year.proportions(), &truth_year);
    let tv_hds_year = tv_distance(&hds_year.proportions(), &truth_year);
    assert!(tv_hds < 0.15, "HDSampler tracks truth (TV = {tv_hds})");
    assert!(
        tv_brute < 0.15,
        "brute force tracks truth (TV = {tv_brute})"
    );
    assert!(
        tv_page_year > 4.0 * tv_hds_year,
        "naive scraping is far worse where the ranking bites: page {tv_page_year} vs hds {tv_hds_year}"
    );
    assert!(
        brute_stats.queries_per_sample() > 2.0 * hds_stats.queries_per_sample(),
        "brute force is much slower per sample"
    );
    println!("\n  PASS: HDSampler ≈ brute force ≈ truth; naive scraping biased; brute force slow");
}
