//! EXP-T2 — §2's gallery of real top-k limits: Google (k = 1000), MSN
//! Career (4000), Microsoft Solution Finder (500), MSN Stock Screener
//! (25). How does the interface's k shape sampling cost and quality?
//!
//! Reproduced shape: larger k ⇒ walks terminate higher in the tree ⇒
//! fewer queries per sample; but higher termination with large result
//! sets also concentrates acceptance clipping, so the skew at a fixed
//! slider position grows mildly with k. Dead-end rate falls with k.

use hdsampler_bench::{collect, f, section, table};
use hdsampler_core::{DirectExecutor, HdsSampler, SamplerConfig};
use hdsampler_estimator::{tv_distance, Histogram};
use hdsampler_model::FormInterface;
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    section("EXP-T2: effect of the interface's top-k limit (§2)");
    let samples = 400;
    let n_tuples = 20_000;

    let mut rows = Vec::new();
    let mut costs = Vec::new();
    for (k, site) in [
        (25usize, "MSN Stock Screener"),
        (500, "MS Solution Finder"),
        (1000, "Google Base"),
        (4000, "MSN Career"),
    ] {
        let db = WorkloadSpec::vehicles(
            VehiclesSpec::compact(n_tuples, 77),
            DbConfig::no_counts().with_k(k),
        )
        .build();
        let schema = db.schema().clone();
        let year = schema.attr_by_name("year").unwrap();
        let truth = db.oracle().marginal(year);

        let mut sampler =
            HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(5)).unwrap();
        let (set, stats) = collect(&mut sampler, samples);
        let hist = Histogram::from_rows(&schema, year, set.rows());
        let tv = tv_distance(&hist.proportions(), &truth);
        let dead_rate = stats.dead_ends as f64 / stats.walks as f64;
        let mean_depth: f64 = set
            .samples()
            .iter()
            .map(|s| s.meta.depth as f64)
            .sum::<f64>()
            / set.len() as f64;
        costs.push(stats.queries_per_sample());
        rows.push(vec![
            k.to_string(),
            site.into(),
            f(stats.queries_per_sample(), 2),
            f(mean_depth, 2),
            f(dead_rate, 3),
            f(tv, 4),
        ]);
    }
    table(
        &[
            "k",
            "real-world example",
            "queries/sample",
            "mean depth",
            "dead-end rate",
            "TV(year)",
        ],
        &rows,
    );

    assert!(
        costs[0] > *costs.last().unwrap(),
        "larger k must reduce queries/sample: {costs:?}"
    );
    println!("  PASS: cost per sample falls as the site's k grows");
}
