//! EXP-C10K — the reactor under connection mass: dial-in rate, the cost
//! a parked horde imposes on foreground request service, and the
//! reactor's own bookkeeping counters.
//!
//! The pool front door caps concurrency at `workers + queue_depth`; the
//! epoll reactor's claim is that a connection costs a slab slot, so one
//! process can hold thousands of keep-alive connections *and keep
//! serving at full speed*. This experiment checks both halves of that
//! claim in-process: a horde of keep-alive connections is dialed and
//! parked (each having completed a real HTTP exchange), the server's own
//! open-connection gauge is read back, and a foreground prober measures
//! req/s with and without the horde on the books.
//!
//! Everything runs in one process, so the fd budget splits between the
//! two ends of every loopback connection: 8 000 held connections ≈
//! 16 000 fds, inside the default 20 000 rlimit with room for the
//! harness.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdsampler_bench::{f, section, table};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::FormInterface as _;
use hdsampler_server::{HttpServer, ServeMode, ServerConfig, ServerHandle};
use hdsampler_webform::{HttpTransport, LocalSite, Transport};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

const N_TUPLES: usize = 2_000;
const K: usize = 100;
const SEED: u64 = 2009;

/// Parked keep-alive connections — the "C10K" mass, sized to the
/// single-process fd budget (each costs two fds on loopback).
const HORDE: usize = 8_000;

/// Foreground requests per probe measurement.
const PROBE_REQS: usize = 2_000;

fn build_db() -> HiddenDb {
    WorkloadSpec::vehicles(
        VehiclesSpec::compact(N_TUPLES, SEED),
        DbConfig::no_counts().with_k(K),
    )
    .build()
}

fn serve(mode: ServeMode) -> ServerHandle {
    let db = build_db();
    let schema = Arc::new(db.schema().clone());
    let site = Arc::new(LocalSite::new(db, schema));
    HttpServer::serve(
        ServerConfig {
            mode,
            // The horde sits idle while probes run; don't let the
            // slowloris reaper dissolve the experiment mid-measurement.
            keep_alive_timeout: Duration::from_secs(120),
            ..ServerConfig::default()
        },
        site,
    )
    .expect("bind loopback")
}

/// One keep-alive prober thread issuing `PROBE_REQS` fetches; req/s.
fn probe_req_per_sec(addr: &str) -> f64 {
    let transport = HttpTransport::new(addr.to_string());
    let paths = ["/search?make=Toyota", "/search?condition=used", "/search"];
    let start = Instant::now();
    for i in 0..PROBE_REQS {
        transport
            .fetch(paths[i % paths.len()])
            .expect("served page");
    }
    PROBE_REQS as f64 / start.elapsed().as_secs_f64()
}

/// Dial `count` keep-alive connections, write one pipelined GET on each
/// (a real exchange: the server parses, renders, flushes), keep every
/// socket open. Returns (held sockets, dial+request seconds).
fn park_horde(addr: &str, count: usize) -> (Vec<TcpStream>, f64) {
    let req = b"GET / HTTP/1.1\r\nHost: c10k\r\nConnection: keep-alive\r\n\r\n";
    let start = Instant::now();
    let mut held = Vec::with_capacity(count);
    for i in 0..count {
        let mut conn = TcpStream::connect(addr).expect("dial horde connection");
        conn.write_all(req).expect("horde request");
        held.push(conn);
        // Both ends share one core in-process; yield a beat every batch
        // so the reactor drains the accept queue faster than we fill it.
        if i % 1024 == 1023 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    (held, start.elapsed().as_secs_f64())
}

fn main() {
    section("EXP-C10K: epoll reactor under connection mass");
    println!(
        "  vehicles compact, n = {N_TUPLES}, k = {K}; {HORDE} parked keep-alive \
         connections, single-threaded foreground prober"
    );

    // Baselines: foreground service rate with an empty house.
    let pool = serve(ServeMode::Pool);
    let pool_rps = probe_req_per_sec(&pool.addr().to_string());
    let pool_stats = pool.shutdown();
    assert_eq!(pool_stats.responses_server_error, 0);

    let server = serve(ServeMode::Reactor);
    let addr = server.addr().to_string();
    let reactor_rps = probe_req_per_sec(&addr);

    // The mass: dial, exchange, park. The client-side dial loop outruns
    // accept_ready (connections queue in the 4096-deep backlog), so give
    // the gauge a moment to catch up before reading it.
    let (held, dial_secs) = park_horde(&addr, HORDE);
    let accept_deadline = Instant::now() + Duration::from_secs(10);
    while server.stats().open_connections < HORDE as u64 && Instant::now() < accept_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let open = server.stats().open_connections;
    assert!(
        open >= HORDE as u64,
        "gauge reports {open} open connections with {HORDE} parked"
    );

    // Foreground service with the horde on the books: the number that
    // separates O(live connections) bookkeeping from O(ready events).
    let loaded_rps = probe_req_per_sec(&addr);

    table(
        &["configuration", "req/s", "vs pool"],
        &[
            vec!["pool, empty".into(), f(pool_rps, 0), "1.00".into()],
            vec![
                "reactor, empty".into(),
                f(reactor_rps, 0),
                f(reactor_rps / pool_rps, 2),
            ],
            vec![
                format!("reactor, {HORDE} parked"),
                f(loaded_rps, 0),
                f(loaded_rps / pool_rps, 2),
            ],
        ],
    );
    println!(
        "  horde dial-in: {HORDE} connections (one exchange each) in {:.2} s \
         = {:.0} conn/s",
        dial_secs,
        HORDE as f64 / dial_secs
    );

    // Unpark: EOF every horde socket, let the reactor reap, then verify
    // its books balanced.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(30);
    while server.stats().open_connections > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0, "no 5xx under mass");
    assert_eq!(
        stats.open_connections, 0,
        "every reaped connection decremented the gauge"
    );
    println!(
        "  reactor books: {} wakeups, {} ready events, {} accepts, {} timers fired, \
         {} requests over {} connections",
        stats.reactor_wakeups,
        stats.reactor_ready_events,
        stats.reactor_accepts,
        stats.timers_fired,
        stats.requests,
        stats.connections,
    );
    assert!(
        stats.reactor_accepts as usize > HORDE,
        "horde + probes all arrived through accept_ready"
    );
    println!(
        "  PASS: {HORDE} parked connections held; foreground service at {:.2}x the \
         empty-reactor rate ({:.0} vs {:.0} req/s)",
        loaded_rps / reactor_rps,
        loaded_rps,
        reactor_rps
    );
}
