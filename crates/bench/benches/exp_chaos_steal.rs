//! EXP-R1 — cross-site work-stealing under adversarial throttling.
//!
//! Half the fleet sits behind rate-limiting adversaries (seeded
//! [`ChaosTransport`] schedules: 429 + `Retry-After`, transient 503s,
//! dropped connections); the other half answers cleanly. Without
//! stealing, the clean sites finish early and their walkers idle while
//! the throttled half grinds alone. With stealing, finished sites donate
//! their walker slots to the hungriest survivors.
//!
//! Acceptance bar: stealing lifts fleet throughput (samples per virtual
//! second) by ≥ 1.5× over no-stealing on the same fleet and seeds, with
//! both runs collecting the full target and charging identical logical
//! query counts (retries are never double-charged).

use std::sync::Arc;

use hdsampler_bench::{f, section, table};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::FormInterface;
use hdsampler_webform::{
    ChaosSpec, ChaosTransport, CoopDriver, FleetConfig, FleetReport, LocalSite, RetryPolicy,
    SiteTask, WebFormInterface,
};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

const SITES: usize = 4;
const WALKERS: usize = 4;
const TARGET_PER_SITE: usize = 120;
const LATENCY_MS: u64 = 40;
const RETRY_AFTER_MS: u64 = 600;

/// Sites 0 and 2 are throttled; 1 and 3 answer cleanly.
fn throttled(i: usize) -> bool {
    i.is_multiple_of(2)
}

fn build_fleet() -> Vec<SiteTask<ChaosTransport<LocalSite<HiddenDb>>>> {
    (0..SITES)
        .map(|i| {
            let db = WorkloadSpec::vehicles(
                VehiclesSpec::compact(1_000, 90 + i as u64),
                DbConfig::no_counts().with_k(100),
            )
            .build();
            let schema = Arc::new(db.schema().clone());
            let k = db.result_limit();
            let site = LocalSite::new(db, Arc::clone(&schema));
            let spec = if throttled(i) {
                ChaosSpec {
                    seed: 40 + i as u64,
                    latency_ms: LATENCY_MS,
                    throttle: 0.5,
                    retry_after_ms: RETRY_AFTER_MS,
                    fail: 0.05,
                    drop: 0.03,
                    ..ChaosSpec::default()
                }
            } else {
                ChaosSpec {
                    latency_ms: LATENCY_MS,
                    ..ChaosSpec::default()
                }
            };
            let wire = ChaosTransport::new(site, spec);
            SiteTask::new(
                format!("site-{i}{}", if throttled(i) { " (throttled)" } else { "" }),
                WebFormInterface::new(wire, schema, k, false).with_retry(RetryPolicy {
                    max_retries: 20,
                    base_backoff_ms: 25,
                    max_backoff_ms: RETRY_AFTER_MS,
                }),
            )
        })
        .collect()
}

fn run(steal: bool) -> FleetReport {
    let cfg = FleetConfig {
        walkers_per_site: WALKERS,
        target_per_site: TARGET_PER_SITE,
        seed: 2009,
        slider: 0.4,
        ..FleetConfig::default()
    };
    let report = CoopDriver::new(cfg)
        .with_stealing(steal)
        .run(&mut build_fleet());
    assert_eq!(report.total_samples(), SITES * TARGET_PER_SITE);
    report
}

fn main() {
    section("EXP-R1: work-stealing under adversarial throttling");
    println!(
        "  {SITES} sites ({} throttled at 50% + 5% 503s + 3% drops, Retry-After {RETRY_AFTER_MS} \
         ms), {TARGET_PER_SITE} samples/site, {WALKERS} walkers/site, {LATENCY_MS} ms latency",
        (0..SITES).filter(|&i| throttled(i)).count(),
    );

    let without = run(false);
    let with = run(true);

    assert_eq!(without.total_steals(), 0, "stealing is opt-in");
    assert!(with.total_steals() > 0, "walkers must actually move");
    // Retry accounting invariant: stealing changes who does the work, not
    // how much work is charged. Retries ride out the same fault schedule
    // in both runs without ever becoming extra logical queries.
    assert!(without.total_retries() > 0 && with.total_retries() > 0);
    for report in [&without, &with] {
        for site in &report.sites {
            assert_eq!(
                site.queries_issued, site.stats.queries_issued,
                "{}: budget view is logical queries only",
                site.name
            );
        }
    }

    let mut rows = Vec::new();
    for (label, report) in [("no stealing", &without), ("stealing", &with)] {
        for site in &report.sites {
            rows.push(vec![
                label.to_string(),
                site.name.clone(),
                site.samples.len().to_string(),
                site.retries.to_string(),
                f(site.backoff_vms as f64 / 1_000.0, 1),
                site.steals.to_string(),
                f(site.elapsed_ms as f64 / 1_000.0, 1),
            ]);
        }
    }
    table(
        &[
            "run",
            "site",
            "samples",
            "retries",
            "backoff s",
            "steals",
            "elapsed s",
        ],
        &rows,
    );
    println!(
        "  fleet: {:.1} s without stealing vs {:.1} s with ({} walkers stolen)",
        without.fleet_elapsed_ms as f64 / 1_000.0,
        with.fleet_elapsed_ms as f64 / 1_000.0,
        with.total_steals(),
    );

    let speedup = without.fleet_elapsed_ms as f64 / with.fleet_elapsed_ms.max(1) as f64;
    let throughput = with.samples_per_vsec() / without.samples_per_vsec().max(f64::MIN_POSITIVE);
    assert!(
        throughput >= 1.5,
        "stealing must lift fleet throughput >= 1.5x when half the fleet is throttled, \
         got {throughput:.2}x ({:.1} -> {:.1} smp/vsec)",
        without.samples_per_vsec(),
        with.samples_per_vsec(),
    );
    println!(
        "  PASS: stealing {speedup:.1}x faster fleet ({throughput:.2}x throughput, bar 1.5x): \
         {:.1} -> {:.1} smp/vsec",
        without.samples_per_vsec(),
        with.samples_per_vsec(),
    );
}
