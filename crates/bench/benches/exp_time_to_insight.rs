//! EXP-T5 — abstract/§5: "the demo reveals a snapshot of the marginal
//! distribution of various attributes of Google Base in a matter of
//! minutes".
//!
//! The full simulated Google Base (k = 1000) is wrapped in the HTML
//! scraping stack with 150 ms of *virtual* latency per page fetch; we
//! sample until the `make` marginal stabilizes (TV to truth < 0.05,
//! checked against oracle ground truth every 25 samples) and report the
//! virtual wall clock for three slider positions.
//!
//! Reproduced shape: minutes, not hours — and the efficiency end of the
//! slider gets there several times faster than the lowest-skew end.

use std::sync::Arc;

use hdsampler_bench::{f, section, table};
use hdsampler_core::{CachingExecutor, HdsSampler, Sampler, SamplerConfig};
use hdsampler_estimator::{tv_distance, Histogram};
use hdsampler_model::FormInterface;
use hdsampler_webform::{LatencyTransport, LocalSite, WebFormInterface};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    section("EXP-T5: time to a stable marginal snapshot (abstract, §5)");
    let db = Arc::new(
        WorkloadSpec::vehicles(VehiclesSpec::full(50_000, 3), DbConfig::default()).build(),
    );
    let schema = Arc::new(db.schema().clone());
    let make = schema.attr_by_name("make").unwrap();
    let truth = db.oracle().marginal(make);
    let latency_ms = 150u64;
    let tv_target = 0.08;
    let max_samples = 1_500;

    let mut rows = Vec::new();
    let mut minutes_by_slider = Vec::new();
    // Note: the lowest-skew end (slider = 0, C = 1) is *infeasible* on the
    // full schema — acceptance ≈ N/B ≈ 5·10⁻⁷ per walk. That infeasibility
    // is the §3.1 motivation for the slider; the sweep starts where the
    // demo realistically operated.
    for slider in [0.3, 0.5, 0.7] {
        let site = LocalSite::new(Arc::clone(&db), Arc::clone(&schema));
        let latency = LatencyTransport::new(site, latency_ms);
        let scraper = WebFormInterface::new(
            latency,
            Arc::clone(&schema),
            db.result_limit(),
            db.supports_count(),
        );
        let mut sampler = HdsSampler::new(
            CachingExecutor::new(&scraper),
            SamplerConfig::seeded(31).with_slider(slider),
        )
        .unwrap();

        let mut hist = Histogram::new(&schema, make);
        let mut collected = 0usize;
        let mut reached_at = None;
        while collected < max_samples {
            let sample = sampler.next_sample().expect("site healthy");
            hist.add(&sample.row, 1.0);
            collected += 1;
            if collected.is_multiple_of(25) {
                let tv = tv_distance(&hist.proportions(), &truth);
                if tv < tv_target {
                    reached_at = Some((collected, tv));
                    break;
                }
            }
        }
        let stats = sampler.stats();
        let virtual_ms = sampler
            .executor()
            .interface()
            .transport()
            .virtual_elapsed_ms();
        let minutes = virtual_ms as f64 / 60_000.0;
        minutes_by_slider.push(minutes);
        let (n, tv) = reached_at.unwrap_or((collected, f64::NAN));
        rows.push(vec![
            f(slider, 2),
            n.to_string(),
            stats.queries_issued.to_string(),
            f(tv, 4),
            f(minutes, 1),
        ]);
    }
    table(
        &[
            "slider",
            "samples to TV<0.08",
            "page fetches",
            "final TV",
            "virtual minutes @150ms",
        ],
        &rows,
    );

    assert!(
        minutes_by_slider.iter().all(|&m| m < 60.0),
        "all configurations finish within an hour of virtual time: {minutes_by_slider:?}"
    );
    assert!(
        minutes_by_slider.last().unwrap() <= minutes_by_slider.first().unwrap(),
        "the efficiency end is at least as fast: {minutes_by_slider:?}"
    );
    println!(
        "  PASS: marginal snapshot of simulated Google Base in {:.0}–{:.0} virtual minutes — \
         'a matter of minutes'",
        minutes_by_slider.iter().cloned().fold(f64::MAX, f64::min),
        minutes_by_slider.iter().cloned().fold(f64::MIN, f64::max)
    );
}
