//! Criterion micro-benchmarks for the substrate (§3.5 "Implementation
//! Platform" analogue): query-engine classification throughput at three
//! depths of the drill-down tree, the zero-materialization fast path
//! against the full-materialization baseline, history-cache lookup cost,
//! and parallel-walker contention on the sharded history cache.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hdsampler_core::{
    CachingExecutor, DirectExecutor, HdsSampler, QueryExecutor, Sampler, SamplerConfig,
    SamplingSession,
};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::{AttrId, ConjunctiveQuery, FormInterface};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

/// Find a query with the requested predicate count whose cardinality
/// satisfies `accept`, scanning attribute values in a deterministic order.
fn find_query(db: &HiddenDb, attrs: &[AttrId], accept: impl Fn(u64) -> bool) -> ConjunctiveQuery {
    let schema = db.schema();
    let mut best: Option<(u64, ConjunctiveQuery)> = None;
    let mut stack: Vec<Vec<(AttrId, u16)>> = vec![vec![]];
    for &a in attrs {
        let dom = schema.domain_size(a) as u16;
        let mut next = Vec::new();
        for partial in &stack {
            for v in 0..dom {
                let mut p = partial.clone();
                p.push((a, v));
                next.push(p);
            }
        }
        stack = next;
    }
    for pairs in stack {
        let q = ConjunctiveQuery::from_pairs(pairs).expect("distinct attrs");
        let count = db.oracle().count(&q);
        if accept(count) && best.as_ref().is_none_or(|(c, _)| count > *c) {
            best = Some((count, q));
        }
    }
    best.expect("workload contains a query of the requested shape")
        .1
}

/// The tentpole acceptance benchmark: classification probes at n = 500k,
/// k = 1000, fast path vs. the full-materialization baseline.
fn engine_classification(c: &mut Criterion) {
    let n = 500_000;
    let k = 1000;
    let db =
        WorkloadSpec::vehicles(VehiclesSpec::full(n, 1), DbConfig::no_counts().with_k(k)).build();
    let schema = db.schema().clone();
    let make = schema.attr_by_name("make").unwrap();
    let year = schema.attr_by_name("year").unwrap();
    let body = schema.attr_by_name("body").unwrap();
    let k64 = k as u64;

    // The root of the query tree itself: the empty query, overflowing by
    // the whole table.
    let root = ConjunctiveQuery::empty();
    // One broad predicate: still root-region, overflowing massively.
    let broad = find_query(&db, &[make], |c| c > 50 * k64);
    // Mid-tree: two predicates, still overflowing but much narrower.
    let mid = find_query(&db, &[make, year], |c| c > k64 && c <= 20 * k64);
    // Leaf: three predicates, valid (non-empty, fits the page).
    let leaf = find_query(&db, &[make, year, body], |c| c > 0 && c <= k64);
    assert!(db.execute(&root).unwrap().overflow);
    assert!(db.execute(&broad).unwrap().overflow);
    assert!(db.execute(&mid).unwrap().overflow);
    assert!(!db.execute(&leaf).unwrap().overflow);

    let mut group = c.benchmark_group("engine");
    for (name, query) in [
        ("root_overflow", &root),
        ("broad_1pred_overflow", &broad),
        ("mid_tree_overflow", &mid),
        ("leaf_valid", &leaf),
    ] {
        group.bench_function(&format!("{name}/fast"), |b| {
            b.iter(|| db.execute(query).unwrap().classification())
        });
        group.bench_function(&format!("{name}/full_materialization"), |b| {
            b.iter(|| db.execute_unbounded(query).unwrap().classification())
        });
    }
    group.bench_function("count_probe_exact_mode", |b| {
        let db_counts = WorkloadSpec::vehicles(
            VehiclesSpec::full(100_000, 1),
            DbConfig::exact_counts().with_k(k),
        )
        .build();
        let q = ConjunctiveQuery::from_pairs([(make, 0), (year, 10)]).unwrap();
        b.iter(|| db_counts.count(&q).unwrap())
    });
    group.finish();
}

fn sampler_walks(c: &mut Criterion) {
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(20_000, 2),
        DbConfig::no_counts().with_k(250),
    )
    .build();

    let mut group = c.benchmark_group("sampler");
    group.bench_function("hds_sample_direct", |b| {
        b.iter_batched(
            || HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(3)).unwrap(),
            |mut s| s.next_sample().unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("hds_sample_cached_warm", |b| {
        let mut s = HdsSampler::new(CachingExecutor::new(&db), SamplerConfig::seeded(3)).unwrap();
        // Warm the cache.
        for _ in 0..200 {
            s.next_sample().unwrap();
        }
        b.iter(|| s.next_sample().unwrap())
    });
    group.finish();
}

fn cache_lookup(c: &mut Criterion) {
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(20_000, 2),
        DbConfig::no_counts().with_k(250),
    )
    .build();
    let exec = CachingExecutor::new(&db);
    let schema = db.schema().clone();
    // Populate with a spread of depth-1/2 queries.
    let mut rng = StdRng::seed_from_u64(9);
    let mut queries = Vec::new();
    for _ in 0..500 {
        let a1 = AttrId(rng.gen_range(0..schema.arity() as u16));
        let v1 = rng.gen_range(0..schema.domain_size(a1)) as u16;
        let q = ConjunctiveQuery::from_pairs([(a1, v1)]).unwrap();
        let _ = exec.classify(&q);
        queries.push(q);
    }
    c.bench_function("cache/memo_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            exec.classify(&queries[i]).unwrap().class
        })
    });
}

/// Parallel-walker contention: 8 walkers drawing from one shared,
/// pre-warmed cache — sharded (default 16) vs. the single-lock baseline
/// (`shards = 1`). Warming happens once, outside the measured region, so
/// every iteration measures the steady-state regime a long sampling run
/// lives in: a high inference-hit rate with a trickle of new entries,
/// where a single global lock makes every hit serialize on one lock word.
fn parallel_contention(c: &mut Criterion) {
    const WORKERS: usize = 8;
    const TARGET: usize = 600;
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(20_000, 2),
        DbConfig::no_counts().with_k(250),
    )
    .build();

    let mut group = c.benchmark_group("parallel_walkers");
    group.sample_size(10);
    for (name, shards) in [("sharded_x16", 16usize), ("single_lock_baseline", 1)] {
        let exec = Arc::new(CachingExecutor::with_shards(&db, 250_000, shards));
        {
            let mut s = HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(11)).unwrap();
            for _ in 0..1_000 {
                s.next_sample().unwrap();
            }
        }
        group.bench_function(name, |b| {
            b.iter(|| {
                let session = SamplingSession::new(TARGET);
                let out = session.run_parallel(WORKERS, |w| {
                    HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(1000 + w as u64))
                        .expect("valid config")
                });
                assert_eq!(out.samples.len(), TARGET);
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = engine_classification, sampler_walks, cache_lookup, parallel_contention
);
criterion_main!(benches);
