//! Criterion micro-benchmarks for the substrate (§3.5 "Implementation
//! Platform" analogue): query-engine throughput, drill-down walk cost, and
//! history-cache lookup cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hdsampler_core::{
    CachingExecutor, DirectExecutor, HdsSampler, QueryExecutor, Sampler, SamplerConfig,
};
use hdsampler_model::{AttrId, ConjunctiveQuery, FormInterface};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn engine_query(c: &mut Criterion) {
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::full(100_000, 1),
        DbConfig::no_counts().with_k(1000),
    )
    .build();
    let schema = db.schema().clone();
    let make = schema.attr_by_name("make").unwrap();
    let year = schema.attr_by_name("year").unwrap();
    let body = schema.attr_by_name("body").unwrap();

    let mut group = c.benchmark_group("engine");
    group.bench_function("selective_conjunction_3pred", |b| {
        let q = ConjunctiveQuery::from_pairs([(make, 0), (year, 10), (body, 0)]).unwrap();
        b.iter(|| db.execute(&q).unwrap().returned())
    });
    group.bench_function("broad_overflow_1pred", |b| {
        let q = ConjunctiveQuery::from_pairs([(make, 0)]).unwrap();
        b.iter(|| db.execute(&q).unwrap().returned())
    });
    group.bench_function("count_probe", |b| {
        let db_counts = WorkloadSpec::vehicles(
            VehiclesSpec::full(100_000, 1),
            DbConfig::exact_counts().with_k(1000),
        )
        .build();
        let q = ConjunctiveQuery::from_pairs([(make, 0), (year, 10)]).unwrap();
        b.iter(|| db_counts.count(&q).unwrap())
    });
    group.finish();
}

fn sampler_walks(c: &mut Criterion) {
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(20_000, 2),
        DbConfig::no_counts().with_k(250),
    )
    .build();

    let mut group = c.benchmark_group("sampler");
    group.bench_function("hds_sample_direct", |b| {
        b.iter_batched(
            || HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(3)).unwrap(),
            |mut s| s.next_sample().unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("hds_sample_cached_warm", |b| {
        let mut s =
            HdsSampler::new(CachingExecutor::new(&db), SamplerConfig::seeded(3)).unwrap();
        // Warm the cache.
        for _ in 0..200 {
            s.next_sample().unwrap();
        }
        b.iter(|| s.next_sample().unwrap())
    });
    group.finish();
}

fn cache_lookup(c: &mut Criterion) {
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(20_000, 2),
        DbConfig::no_counts().with_k(250),
    )
    .build();
    let exec = CachingExecutor::new(&db);
    let schema = db.schema().clone();
    // Populate with a spread of depth-1/2 queries.
    let mut rng = StdRng::seed_from_u64(9);
    let mut queries = Vec::new();
    for _ in 0..500 {
        let a1 = AttrId(rng.gen_range(0..schema.arity() as u16));
        let v1 = rng.gen_range(0..schema.domain_size(a1)) as u16;
        let q = ConjunctiveQuery::from_pairs([(a1, v1)]).unwrap();
        let _ = exec.classify(&q);
        queries.push(q);
    }
    c.bench_function("cache/memo_hit", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % queries.len();
            exec.classify(&queries[i]).unwrap().class
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = engine_query, sampler_walks, cache_lookup
);
criterion_main!(benches);
