//! EXP-C1 — the cooperative pipelined walker vs thread-per-walker
//! driving.
//!
//! The threaded [`MultiSiteDriver`] spends one OS thread per in-flight
//! request; the cooperative [`CoopDriver`] multiplexes every walker as a
//! resumable [`WalkMachine`](hdsampler_core::WalkMachine) from a single
//! thread, so its concurrency is bounded by connections, not stacks.
//!
//! Acceptance bars:
//!
//! * one OS thread drives ≥ 64 concurrent walker connections with
//!   samples/vsec ≥ the thread-per-walker driver at W = 4;
//! * thread-count reduction at W = 64 is ≥ 4× (it is 64×: 64 walker
//!   threads + 1 runner collapse onto the driving thread);
//! * at equal W = 4 the coop driver stays within a few percent of the
//!   threaded one (it pays an *honest* causal floor on cache-hit resumes
//!   that the threaded driver cannot account for).

use std::sync::Arc;

use hdsampler_bench::{f, section, table};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::FormInterface;
use hdsampler_webform::{
    CoopDriver, FleetConfig, LatencyTransport, LocalSite, MultiSiteDriver, SiteTask,
    WebFormInterface,
};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

const LATENCY_MS: u64 = 100;
const TARGET_PER_SITE: usize = 200;
const SITES: usize = 2;

fn build_fleet(sites: usize) -> Vec<SiteTask<LatencyTransport<LocalSite<HiddenDb>>>> {
    (0..sites)
        .map(|i| {
            let db = WorkloadSpec::vehicles(
                VehiclesSpec::compact(1_000, 90 + i as u64),
                DbConfig::no_counts().with_k(100),
            )
            .build();
            let schema = Arc::new(db.schema().clone());
            let k = db.result_limit();
            let site = LocalSite::new(db, Arc::clone(&schema));
            let wire = LatencyTransport::new(site, LATENCY_MS);
            SiteTask::new(
                format!("site-{i}"),
                WebFormInterface::new(wire, schema, k, false),
            )
        })
        .collect()
}

fn cfg(walkers: usize) -> FleetConfig {
    FleetConfig {
        walkers_per_site: walkers,
        target_per_site: TARGET_PER_SITE,
        seed: 2009,
        slider: 0.4,
        ..FleetConfig::default()
    }
}

fn main() {
    section("EXP-C1: cooperative pipelined walker vs thread-per-walker");
    println!(
        "  {SITES} sites, {TARGET_PER_SITE} samples/site, {LATENCY_MS} ms virtual latency, \
         slider 0.4"
    );

    // Baseline: the threaded driver at W = 4 (1 runner thread per site +
    // 4 walker threads per site).
    let threaded4 = MultiSiteDriver::new(cfg(4)).run_concurrent(&mut build_fleet(SITES));
    assert_eq!(threaded4.total_samples(), SITES * TARGET_PER_SITE);
    let threaded4_threads = SITES * (4 + 1);

    // Cooperative at the same W = 4 (1 thread total).
    let coop4 = CoopDriver::new(cfg(4)).run(&mut build_fleet(SITES));
    assert_eq!(coop4.total_samples(), SITES * TARGET_PER_SITE);

    // Cooperative at W = 64: one OS thread, 64 pipelined connections per
    // site.
    let coop64 = CoopDriver::new(cfg(64)).run(&mut build_fleet(SITES));
    assert_eq!(coop64.total_samples(), SITES * TARGET_PER_SITE);
    for site in &coop64.sites {
        assert!(
            site.queries_issued > 0,
            "the wire must actually be exercised"
        );
    }

    // And W = 64 walkers squeezed onto 8 connections per site: pipelining
    // several requests deep per connection.
    let coop64x8 = CoopDriver::new(cfg(64))
        .with_connections(8)
        .run(&mut build_fleet(SITES));
    assert_eq!(coop64x8.total_samples(), SITES * TARGET_PER_SITE);

    let rows = vec![
        vec![
            "threaded W=4".to_string(),
            threaded4_threads.to_string(),
            (SITES * 4).to_string(),
            f(threaded4.fleet_elapsed_ms as f64 / 1_000.0, 1),
            f(threaded4.samples_per_vsec(), 1),
        ],
        vec![
            "coop W=4".to_string(),
            "1".to_string(),
            (SITES * 4).to_string(),
            f(coop4.fleet_elapsed_ms as f64 / 1_000.0, 1),
            f(coop4.samples_per_vsec(), 1),
        ],
        vec![
            "coop W=64".to_string(),
            "1".to_string(),
            (SITES * 64).to_string(),
            f(coop64.fleet_elapsed_ms as f64 / 1_000.0, 1),
            f(coop64.samples_per_vsec(), 1),
        ],
        vec![
            "coop W=64 C=8".to_string(),
            "1".to_string(),
            (SITES * 8).to_string(),
            f(coop64x8.fleet_elapsed_ms as f64 / 1_000.0, 1),
            f(coop64x8.samples_per_vsec(), 1),
        ],
    ];
    table(
        &["driver", "threads", "connections", "fleet s", "smp/vsec"],
        &rows,
    );

    // Acceptance: one thread at W = 64 beats the W = 4 thread pool.
    assert!(
        coop64.samples_per_vsec() >= threaded4.samples_per_vsec(),
        "coop W=64 ({:.1} smp/vs) must be >= threaded W=4 ({:.1} smp/vs)",
        coop64.samples_per_vsec(),
        threaded4.samples_per_vsec()
    );
    // Thread-count reduction at W = 64: 64 walker threads (+ runners)
    // collapse onto 1.
    let reduction = (SITES * (64 + 1)) as f64 / 1.0;
    assert!(
        reduction >= 4.0,
        "thread-count reduction must be >= 4x, got {reduction:.0}x"
    );
    // Equal-walker parity: within 25% (usually a few percent — the coop
    // driver bills an honest causal floor the threaded one skips).
    assert!(
        coop4.samples_per_vsec() >= threaded4.samples_per_vsec() * 0.75,
        "coop W=4 ({:.1}) fell too far below threaded W=4 ({:.1})",
        coop4.samples_per_vsec(),
        threaded4.samples_per_vsec()
    );
    println!(
        "  PASS: 1 thread, {} connections: {:.1} smp/vsec >= threaded W=4's {:.1} \
         ({:.0}x thread reduction at W=64)",
        SITES * 64,
        coop64.samples_per_vsec(),
        threaded4.samples_per_vsec(),
        reduction
    );
}
