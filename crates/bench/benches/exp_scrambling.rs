//! EXP-T7 — design-choice ablation (ref [1]): random per-walk attribute
//! scrambling vs a fixed attribute order.
//!
//! A fixed order systematically favours tuples that become unique early
//! along that order; scrambling averages walk depths across tuples. The
//! effect is invisible at C = 1 (acceptance–rejection equalizes both) but
//! shows up as lower skew at the efficiency end of the slider — exactly
//! the regime the demo runs in.
//!
//! Reproduced shape: at slider = 1 (raw walk), scrambling reduces the
//! tuple-level skew coefficient and the marginal TV distance on
//! correlated data; at slider = 0 the two orders coincide statistically.

use hdsampler_bench::{collect, f, section, table, tuple_frequencies};
use hdsampler_core::{DirectExecutor, HdsSampler, OrderStrategy, SamplerConfig};
use hdsampler_estimator::{skew_coefficient, tv_distance, Histogram};
use hdsampler_model::{AttrId, FormInterface};
use hdsampler_workload::{DataSpec, DbConfig, WorkloadSpec};

fn main() {
    section("EXP-T7: fixed vs scrambled attribute order (ref [1] ablation)");
    let n = 3_000;
    let db = WorkloadSpec {
        data: DataSpec::BooleanCorrelated {
            m: 14,
            n,
            clusters: 6,
            noise: 0.08,
        },
        db: DbConfig::no_counts().with_k(20),
        seed: 17,
    }
    .build();
    let schema = db.schema().clone();
    let attr = AttrId(0);
    let truth = db.oracle().marginal(attr);
    let samples = 600;

    let mut rows = Vec::new();
    let mut skew_by_config = Vec::new();
    for (strategy, strategy_name) in [
        (OrderStrategy::Fixed, "fixed"),
        (OrderStrategy::ScramblePerWalk, "scrambled"),
    ] {
        for slider in [0.0, 1.0] {
            let mut sampler = HdsSampler::new(
                DirectExecutor::new(&db),
                SamplerConfig::seeded(7)
                    .with_order(strategy)
                    .with_slider(slider),
            )
            .unwrap();
            let (set, stats) = collect(&mut sampler, samples);
            let hist = Histogram::from_rows(&schema, attr, set.rows());
            let tv = tv_distance(&hist.proportions(), &truth);
            let freqs = tuple_frequencies(&db, &set);
            let skew = skew_coefficient(&freqs, n, set.len() as u64);
            skew_by_config.push((strategy_name, slider, skew));
            rows.push(vec![
                strategy_name.into(),
                f(slider, 1),
                f(stats.queries_per_sample(), 2),
                f(tv, 4),
                f(skew, 3),
            ]);
        }
    }
    table(
        &["order", "slider", "queries/sample", "TV(a1)", "skew coeff"],
        &rows,
    );

    let skew_of = |name: &str, slider: f64| {
        skew_by_config
            .iter()
            .find(|&&(n, s, _)| n == name && s == slider)
            .map(|&(_, _, v)| v)
            .unwrap()
    };
    let fixed_raw = skew_of("fixed", 1.0);
    let scrambled_raw = skew_of("scrambled", 1.0);
    assert!(
        scrambled_raw < fixed_raw,
        "scrambling must reduce raw-walk skew: fixed {fixed_raw} vs scrambled {scrambled_raw}"
    );
    println!(
        "  PASS: at the efficiency end, scrambling cuts the skew coefficient \
         from {} to {}",
        f(fixed_raw, 3),
        f(scrambled_raw, 3)
    );
}
