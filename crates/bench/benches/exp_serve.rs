//! EXP-S1 — the real front door: served requests/sec and end-to-end
//! samples/sec over live loopback TCP, against the in-process baseline.
//!
//! PR 3 put the form behind a real socket. Two questions decide whether
//! the server is a deployable front door or a demo: how many page fetches
//! per second the HTTP stack serves (keep-alive, parse, execute, render,
//! write), and how much end-to-end sampling throughput the real wire
//! costs relative to calling `LocalSite` as a function. Unlike the
//! virtual-clock experiments, every number here is real wall-clock.

use std::sync::Arc;
use std::time::Instant;

use hdsampler_bench::{f, section, table};
use hdsampler_core::{CachingExecutor, HdsSampler, QueryExecutor, Sampler, SamplerConfig};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_model::FormInterface;
use hdsampler_server::{HttpServer, ServerConfig, ServerHandle};
use hdsampler_webform::{HttpTransport, LocalSite, Transport, WebFormInterface};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

const N_TUPLES: usize = 5_000;
const K: usize = 100;
const SEED: u64 = 2009;
const SAMPLE_TARGET: usize = 150;

fn build_db() -> HiddenDb {
    WorkloadSpec::vehicles(
        VehiclesSpec::compact(N_TUPLES, SEED),
        DbConfig::no_counts().with_k(K),
    )
    .build()
}

fn serve() -> (ServerHandle, Arc<hdsampler_model::Schema>) {
    let db = build_db();
    let schema = Arc::new(db.schema().clone());
    let site = Arc::new(LocalSite::new(db, Arc::clone(&schema)));
    let handle = HttpServer::serve(ServerConfig::default(), site).expect("bind loopback");
    (handle, schema)
}

/// Fetch `per_thread` pages from each of `threads` threads; req/s.
fn served_req_per_sec(addr: &str, threads: usize, per_thread: usize) -> f64 {
    let transport = HttpTransport::new(addr.to_string());
    // Mix of probe shapes a walker issues: broad overflow, mid-tree, leaf.
    let paths = [
        "/search",
        "/search?condition=used",
        "/search?make=Toyota&condition=used",
        "/search?make=Honda",
    ];
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                for i in 0..per_thread {
                    transport
                        .fetch(paths[i % paths.len()])
                        .expect("served page");
                }
            });
        }
    });
    (threads * per_thread) as f64 / start.elapsed().as_secs_f64()
}

/// Collect `SAMPLE_TARGET` samples through `iface`; (samples/s, fetches).
fn sampling_throughput<F: FormInterface>(iface: F) -> (f64, u64, Vec<u64>) {
    let exec = CachingExecutor::new(iface);
    let cfg = SamplerConfig::seeded(SEED).with_slider(0.3);
    let mut sampler = HdsSampler::new(&exec, cfg).expect("valid config");
    let start = Instant::now();
    let mut keys = Vec::with_capacity(SAMPLE_TARGET);
    for _ in 0..SAMPLE_TARGET {
        keys.push(sampler.next_sample().expect("sample").row.key);
    }
    let secs = start.elapsed().as_secs_f64();
    (SAMPLE_TARGET as f64 / secs, exec.queries_issued(), keys)
}

fn main() {
    section("EXP-S1: HTTP front door — served req/s and end-to-end samples/s");
    println!(
        "  vehicles compact, n = {N_TUPLES}, k = {K}; loopback TCP, keep-alive, \
         4 server workers"
    );

    // Raw page service rate.
    let (server, schema) = serve();
    let addr = server.addr().to_string();
    let mut rows = Vec::new();
    let mut one_thread = 0.0;
    for threads in [1usize, 4] {
        let rps = served_req_per_sec(&addr, threads, 400);
        if threads == 1 {
            one_thread = rps;
        }
        rows.push(vec![threads.to_string(), f(rps, 0), f(rps / one_thread, 2)]);
    }
    table(&["client threads", "req/s", "vs 1 thread"], &rows);
    let after_raw = server.stats();
    assert_eq!(after_raw.responses_server_error, 0, "no 5xx under load");

    // End-to-end sampling: live TCP vs in-process function calls.
    let remote_iface = WebFormInterface::new(
        HttpTransport::new(addr.clone()),
        Arc::clone(&schema),
        K,
        false,
    );
    let (remote_sps, remote_fetches, remote_keys) = sampling_throughput(&remote_iface);

    let local_db = build_db();
    let local_iface = WebFormInterface::new(
        LocalSite::new(local_db, Arc::clone(&schema)),
        Arc::clone(&schema),
        K,
        false,
    );
    let (local_sps, local_fetches, local_keys) = sampling_throughput(&local_iface);

    assert_eq!(
        remote_keys, local_keys,
        "same seed, same responses: the served walk must equal the in-process walk"
    );
    assert_eq!(remote_fetches, local_fetches);
    assert!(!remote_keys.is_empty(), "nonzero sample count");

    table(
        &["transport", "samples/s", "fetches", "relative"],
        &[
            vec![
                "in-process".into(),
                f(local_sps, 1),
                local_fetches.to_string(),
                "1.00".into(),
            ],
            vec![
                "loopback HTTP".into(),
                f(remote_sps, 1),
                remote_fetches.to_string(),
                f(remote_sps / local_sps, 2),
            ],
        ],
    );

    let stats = server.shutdown();
    assert_eq!(stats.responses_server_error, 0);
    assert!(
        stats.connections < stats.requests,
        "keep-alive must reuse connections ({} conns, {} requests)",
        stats.connections,
        stats.requests
    );
    println!(
        "  server totals: {} requests over {} connections, {:.1} MiB out",
        stats.requests,
        stats.connections,
        stats.bytes_out as f64 / (1024.0 * 1024.0)
    );
    println!(
        "  PASS: identical seeded walks over the real wire; {:.0} req/s raw service rate",
        one_thread
    );
}
