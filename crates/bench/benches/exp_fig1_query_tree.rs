//! EXP-F1 — Figure 1 of the paper: the query tree of the 4-tuple Boolean
//! database, the random walk's analytic reach probabilities, and the
//! acceptance–rejection correction that makes the output uniform.
//!
//! Paper claim (§2): with k = 1 and fixed order a1,a2,a3 the walk reaches
//! t4 with probability 1/2, t1 with 1/4, t2 and t3 with 1/8 each; the
//! acceptance-corrected sampler is uniform.

use hdsampler_bench::{f, section, table};
use hdsampler_core::{
    AcceptancePolicy, DirectExecutor, HdsSampler, OrderStrategy, Sampler, SamplerConfig,
};
use hdsampler_workload::paper::{figure1_db, FIGURE1_REACH_PROBS, FIGURE1_TUPLES};

fn main() {
    section("EXP-F1: Figure 1 query tree (paper §2)");
    println!(
        "\nDatabase (k = 1):\n      a1 a2 a3\n{}",
        FIGURE1_TUPLES
            .iter()
            .enumerate()
            .map(|(i, t)| format!("  t{}   {}  {}  {}", i + 1, t[0], t[1], t[2]))
            .collect::<Vec<_>>()
            .join("\n")
    );
    println!(
        "\nQuery tree walk-through:\n  \
         a1=0 → overflow (t1,t2,t3)      a1=1 → VALID: t4   (depth 1, p=1/2)\n  \
         a1=0,a2=0 → VALID: t1 (depth 2, p=1/4)\n  \
         a1=0,a2=1 → overflow (t2,t3)\n  \
         a1=0,a2=1,a3=0 → VALID: t2 (depth 3, p=1/8)\n  \
         a1=0,a2=1,a3=1 → VALID: t3 (depth 3, p=1/8)\n"
    );

    let n = 200_000;

    // Raw walk distribution (AcceptAll) — must match the analytic numbers.
    let db = figure1_db(1);
    let mut raw = HdsSampler::new(
        DirectExecutor::new(&db),
        SamplerConfig::seeded(1)
            .with_order(OrderStrategy::Fixed)
            .with_acceptance(AcceptancePolicy::AcceptAll),
    )
    .unwrap();
    let mut raw_counts = [0u32; 4];
    for _ in 0..n {
        let s = raw.next_sample().unwrap();
        let ix = FIGURE1_TUPLES
            .iter()
            .position(|t| t[..] == *s.row.values)
            .expect("sampled tuple exists");
        raw_counts[ix] += 1;
    }

    // Acceptance-corrected distribution (C = 1) — must be uniform.
    let db2 = figure1_db(1);
    let mut uniform = HdsSampler::new(
        DirectExecutor::new(&db2),
        SamplerConfig::seeded(2).with_order(OrderStrategy::Fixed),
    )
    .unwrap();
    let mut uni_counts = [0u32; 4];
    for _ in 0..n {
        let s = uniform.next_sample().unwrap();
        let ix = FIGURE1_TUPLES
            .iter()
            .position(|t| t[..] == *s.row.values)
            .unwrap();
        uni_counts[ix] += 1;
    }

    let rows: Vec<Vec<String>> = (0..4)
        .map(|i| {
            vec![
                format!("t{}", i + 1),
                f(FIGURE1_REACH_PROBS[i], 4),
                f(raw_counts[i] as f64 / n as f64, 4),
                "0.2500".to_string(),
                f(uni_counts[i] as f64 / n as f64, 4),
            ]
        })
        .collect();
    table(
        &[
            "tuple",
            "analytic reach",
            "measured walk",
            "uniform target",
            "measured C=1",
        ],
        &rows,
    );

    let max_raw_err = (0..4)
        .map(|i| (raw_counts[i] as f64 / n as f64 - FIGURE1_REACH_PROBS[i]).abs())
        .fold(0.0, f64::max);
    let max_uni_err = (0..4)
        .map(|i| (uni_counts[i] as f64 / n as f64 - 0.25).abs())
        .fold(0.0, f64::max);
    println!(
        "\n  max |measured − analytic| (raw walk): {}\n  max |measured − 1/4| (C = 1): {}",
        f(max_raw_err, 4),
        f(max_uni_err, 4)
    );
    assert!(max_raw_err < 0.01, "walk distribution must match Figure 1");
    assert!(max_uni_err < 0.01, "C = 1 must be uniform");
    println!("  PASS: both within ±0.01 of the paper's analytic values");
}
