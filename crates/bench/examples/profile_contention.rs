//! Hit-type distribution and wall-clock of the parallel-walker workload,
//! for tuning the history-cache sharding. Run with
//! `cargo run --release -p hdsampler-bench --example profile_contention`.

use std::sync::Arc;
use std::time::Instant;

use hdsampler_core::{
    CachingExecutor, HdsSampler, QueryExecutor, Sampler, SamplerConfig, SamplingSession,
};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    let db = WorkloadSpec::vehicles(
        VehiclesSpec::compact(20_000, 2),
        DbConfig::no_counts().with_k(250),
    )
    .build();
    for shards in [16usize, 1] {
        let exec = Arc::new(CachingExecutor::with_shards(&db, 250_000, shards));
        let mut s = HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(11)).unwrap();
        for _ in 0..1_000 {
            s.next_sample().unwrap();
        }
        let warm_stats = exec.history_stats();
        let warm_requests = exec.requests();
        let t0 = Instant::now();
        let mut iters = 0;
        while t0.elapsed().as_millis() < 3000 {
            let session = SamplingSession::new(600);
            let out = session.run_parallel(8, |w| {
                HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(1000 + w as u64))
                    .expect("valid config")
            });
            assert_eq!(out.samples.len(), 600);
            iters += 1;
        }
        let per_iter = t0.elapsed() / iters;
        let st = exec.history_stats();
        let requests = exec.requests() - warm_requests;
        println!(
            "shards={shards}: {per_iter:?}/session  requests/meas={requests}  \
             memo={} empty={} overflow={} filter={} count_memo={} miss={}",
            st.memo_hits - warm_stats.memo_hits,
            st.empty_rule_hits - warm_stats.empty_rule_hits,
            st.overflow_rule_hits - warm_stats.overflow_rule_hits,
            st.filter_rule_hits - warm_stats.filter_rule_hits,
            st.count_memo_hits - warm_stats.count_memo_hits,
            st.misses - warm_stats.misses,
        );
    }
}
