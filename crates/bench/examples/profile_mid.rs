//! Decomposed timing of a mid-tree overflow probe (n = 500k, k = 1000):
//! stream vs. stream+tournament vs. materialize+select vs. row
//! materialization, ending with the two whole-engine paths. Run with
//! `cargo run --release -p hdsampler-bench --example profile_mid` when
//! hunting for where an `execute` microsecond actually goes.

use std::time::Instant;

use hdsampler_hidden_db::index::PostingIndex;
use hdsampler_hidden_db::ranking::{RankSpec, Ranking};
use hdsampler_hidden_db::table::TableBuilder;
use hdsampler_hidden_db::topk::{top_k, top_k_streamed};
use hdsampler_model::{ConjunctiveQuery, FormInterface, MeasureId};
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

fn main() {
    let n = 500_000;
    let k = 1000;
    let db =
        WorkloadSpec::vehicles(VehiclesSpec::full(n, 1), DbConfig::no_counts().with_k(k)).build();
    let schema = db.schema().clone();
    let make = schema.attr_by_name("make").unwrap();
    let year = schema.attr_by_name("year").unwrap();
    let mut best = None;
    for mv in 0..schema.domain_size(make) as u16 {
        for yv in 0..schema.domain_size(year) as u16 {
            let q = ConjunctiveQuery::from_pairs([(make, mv), (year, yv)]).unwrap();
            let c = db.oracle().count(&q);
            if c > k as u64 && c <= 20 * k as u64 && best.as_ref().is_none_or(|(bc, _)| c > *bc) {
                best = Some((c, q));
            }
        }
    }
    let (count, mid) = best.unwrap();
    println!("mid count = {count}");

    // Parallel table with identical contents (key seed differs but layout same).
    let mut tb = TableBuilder::new(schema.clone().into(), 1);
    for t in 0..db.n_tuples() {
        let row = db.oracle().row(hdsampler_model::TupleId(t as u32));
        tb.push(&hdsampler_model::Tuple::new_unchecked(
            row.values.to_vec(),
            row.measures.to_vec(),
        ))
        .unwrap();
    }
    let table = tb.finish();
    let index = PostingIndex::build(&table);
    let ranking = Ranking::build(&RankSpec::ByMeasureDesc(MeasureId(0)), &table);

    let time = |label: &str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        for _ in 0..200 {
            f();
        }
        println!("{label}: {:?}/iter", t0.elapsed() / 200);
    };

    time("stream only", &mut || {
        std::hint::black_box(index.intersection(&mid).count());
    });
    time("stream + heap (top_k_streamed)", &mut || {
        std::hint::black_box(top_k_streamed(index.intersection(&mid), &ranking, k));
    });
    time("evaluate (collect)", &mut || {
        std::hint::black_box(index.evaluate(&mid));
    });
    time("evaluate + top_k (materialized)", &mut || {
        let m = index.evaluate(&mid);
        std::hint::black_box(top_k(&m, &ranking, k));
    });
    time("rows x1000 via table.row", &mut || {
        let ids: Vec<_> = index.intersection(&mid).take(k).collect();
        let rows: Vec<_> = ids
            .iter()
            .map(|&t| table.row(hdsampler_model::TupleId(t)))
            .collect();
        std::hint::black_box(rows);
    });
    time("execute fast", &mut || {
        std::hint::black_box(db.execute(&mid).unwrap().returned());
    });
    time("execute full", &mut || {
        std::hint::black_box(db.execute_unbounded(&mid).unwrap().returned());
    });
}
