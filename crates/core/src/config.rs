//! Sampler configuration: everything the demo's front end lets a user set
//! (Figure 3) plus the internal knobs of the algorithms.

use serde::{Deserialize, Serialize};

use hdsampler_model::ConjunctiveQuery;

use crate::acceptance::AcceptancePolicy;
use crate::order::OrderStrategy;

/// Configuration shared by the samplers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// RNG seed — sampling runs are reproducible per seed.
    pub seed: u64,
    /// Acceptance–rejection policy of the Sample Processor (§3.3); the
    /// demo's efficiency ↔ skew slider maps here (§3.1).
    pub acceptance: AcceptancePolicy,
    /// Attribute-order strategy of the Sample Generator.
    pub order: OrderStrategy,
    /// User-pinned value bindings: HDSampler can target "the whole dataset
    /// or a specific selection of attributes" (§3.1); the sample is then
    /// uniform over the pinned sub-population.
    pub scope: ConjunctiveQuery,
    /// Attributes the walk may drill on, by name. `None` ⇒ every attribute
    /// not pinned by `scope`.
    pub drill_attrs: Option<Vec<String>>,
    /// Abort `next_sample` after this many fruitless walks (safety valve
    /// against degenerate configurations, e.g. C = 1 on a near-empty scope).
    pub max_walks_per_sample: u64,
    /// Brute-force only: assumed maximum duplicate multiplicity per fully
    /// specified assignment (tuples beyond this are slightly underweighted;
    /// clips are counted in the stats).
    pub brute_dup_cap: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            seed: 0x4D53_414D_504C_4552, // "MSAMPLER"
            acceptance: AcceptancePolicy::Uniform,
            order: OrderStrategy::ScramblePerWalk,
            scope: ConjunctiveQuery::empty(),
            drill_attrs: None,
            max_walks_per_sample: 1_000_000,
            brute_dup_cap: 8,
        }
    }
}

impl SamplerConfig {
    /// Default configuration with a specific seed.
    pub fn seeded(seed: u64) -> Self {
        SamplerConfig {
            seed,
            ..Default::default()
        }
    }

    /// Set the acceptance policy.
    pub fn with_acceptance(mut self, policy: AcceptancePolicy) -> Self {
        self.acceptance = policy;
        self
    }

    /// Set the slider position (0 = lowest skew, 1 = highest efficiency).
    pub fn with_slider(self, position: f64) -> Self {
        self.with_acceptance(AcceptancePolicy::Slider { position })
    }

    /// Set the order strategy.
    pub fn with_order(mut self, order: OrderStrategy) -> Self {
        self.order = order;
        self
    }

    /// Pin value bindings (restrict sampling to a sub-population).
    pub fn with_scope(mut self, scope: ConjunctiveQuery) -> Self {
        self.scope = scope;
        self
    }

    /// Restrict drilling to the named attributes.
    pub fn with_drill_attrs<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.drill_attrs = Some(names.into_iter().map(Into::into).collect());
        self
    }

    /// Set the per-sample walk limit.
    pub fn with_max_walks(mut self, walks: u64) -> Self {
        self.max_walks_per_sample = walks;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_methods_compose() {
        let cfg = SamplerConfig::seeded(7)
            .with_slider(0.4)
            .with_order(OrderStrategy::Fixed)
            .with_max_walks(10)
            .with_drill_attrs(["make", "year"]);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.acceptance, AcceptancePolicy::Slider { position: 0.4 });
        assert_eq!(cfg.order, OrderStrategy::Fixed);
        assert_eq!(cfg.max_walks_per_sample, 10);
        assert_eq!(cfg.drill_attrs.as_deref().unwrap().len(), 2);
    }

    #[test]
    fn default_is_uniform_and_scrambled() {
        let cfg = SamplerConfig::default();
        assert_eq!(cfg.acceptance, AcceptancePolicy::Uniform);
        assert_eq!(cfg.order, OrderStrategy::ScramblePerWalk);
        assert!(cfg.scope.is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = SamplerConfig::seeded(3).with_slider(0.8);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SamplerConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
