//! Query-history cache with containment inference (§3.2, ref [2]).
//!
//! "This module also keeps track of the query history and results to ensure
//! that the random query generation process accumulates savings by not
//! issuing the same query twice, or queries whose results can be inferred
//! from the query history."
//!
//! Four inference rules answer a query without touching the site:
//!
//! 1. **Memo** — the exact query was asked before.
//! 2. **Empty-subset** — some remembered *empty* query's predicate set is a
//!    subset of the new query's: a refinement of an empty query is empty.
//! 3. **Overflow-superset** — the new query's predicate set is a subset of
//!    some remembered *overflowing* query's: a broadening of an overflowing
//!    query overflows. (Samplers only need the classification of
//!    overflowing nodes, never their rows — so this rule fully answers.)
//! 4. **Valid-ancestor filtering** — some remembered *valid* query's
//!    predicate set is a subset of the new query's: the new result is
//!    computed by filtering the remembered (complete) row list locally.
//!
//! Counts are memoized separately; a valid (complete) response additionally
//! reveals its exact count regardless of how noisy the site's banner is.
//!
//! With per-walk attribute scrambling, rules 2–4 fire *across* walks that
//! constrained the same values in different orders — exactly the repeat
//! structure random drill-downs generate in the upper tree.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use hdsampler_model::{
    Classification, ConjunctiveQuery, InterfaceError, FormInterface, Predicate, Row, Schema,
};

use crate::executor::{Classified, QueryExecutor};

/// Cache-hit counters, by rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Rule 1 hits (exact memo).
    pub memo_hits: u64,
    /// Rule 2 hits (empty-subset).
    pub empty_rule_hits: u64,
    /// Rule 3 hits (overflow-superset).
    pub overflow_rule_hits: u64,
    /// Rule 4 hits (valid-ancestor filtering).
    pub filter_rule_hits: u64,
    /// Count-probe memo hits.
    pub count_memo_hits: u64,
    /// Requests that had to be charged at the interface.
    pub misses: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl HistoryStats {
    /// Total requests answered from history.
    pub fn total_hits(&self) -> u64 {
        self.memo_hits
            + self.empty_rule_hits
            + self.overflow_rule_hits
            + self.filter_rule_hits
            + self.count_memo_hits
    }
}

/// A set of predicate-sets supporting subset/superset queries via a
/// per-predicate inverted index.
#[derive(Debug, Default)]
struct ContainmentSet {
    queries: Vec<ConjunctiveQuery>,
    /// predicate → indices of stored queries containing it.
    by_pred: HashMap<Predicate, Vec<u32>>,
    /// Index of the stored empty query, if any (subset of everything).
    has_empty: bool,
}

impl ContainmentSet {
    fn insert(&mut self, q: &ConjunctiveQuery) {
        if q.is_empty() {
            self.has_empty = true;
            return;
        }
        let ix = self.queries.len() as u32;
        for p in q.predicates() {
            self.by_pred.entry(*p).or_default().push(ix);
        }
        self.queries.push(q.clone());
    }

    /// Is some stored set a subset of `q`'s predicates?
    fn any_subset_of(&self, q: &ConjunctiveQuery) -> bool {
        self.find_subset_of(q).is_some()
    }

    /// Find a stored set that is a subset of `q`'s predicates.
    fn find_subset_of(&self, q: &ConjunctiveQuery) -> Option<&ConjunctiveQuery> {
        if self.has_empty {
            // The empty stored query is a subset of everything; callers
            // that store it (valids) handle it separately, so return the
            // first non-trivial match preferentially but fall back to none
            // here — empty is handled by the caller via `has_empty`.
        }
        // A subset must draw all its predicates from q's; every stored
        // candidate contains at least one of q's predicates.
        let mut seen: Vec<u32> = Vec::new();
        for p in q.predicates() {
            if let Some(ixs) = self.by_pred.get(p) {
                seen.extend_from_slice(ixs);
            }
        }
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
            .map(|ix| &self.queries[ix as usize])
            .find(|cand| q.is_refinement_of(cand))
    }

    /// Is `q` a subset of some stored set (i.e. does a stored superset
    /// exist)?
    fn any_superset_of(&self, q: &ConjunctiveQuery) -> bool {
        if q.is_empty() {
            return self.has_empty || !self.queries.is_empty();
        }
        // A superset must contain q's first predicate.
        let first = &q.predicates()[0];
        let Some(ixs) = self.by_pred.get(first) else {
            return false;
        };
        ixs.iter().any(|&ix| self.queries[ix as usize].is_refinement_of(q))
    }

    fn clear(&mut self) {
        self.queries.clear();
        self.by_pred.clear();
        self.has_empty = false;
    }
}

/// Interior cache state.
#[derive(Debug, Default)]
struct HistoryInner {
    /// Rule 1: exact memo of classifications (+ rows for valid).
    memo: HashMap<ConjunctiveQuery, Classified>,
    /// Rule 2 support: known-empty predicate sets (kept minimal-ish).
    empties: ContainmentSet,
    /// Rule 3 support: known-overflowing predicate sets (kept maximal-ish).
    overflows: ContainmentSet,
    /// Rule 4 support: known-valid queries with their complete rows.
    valids: ContainmentSet,
    valid_rows: HashMap<ConjunctiveQuery, Arc<[Row]>>,
    /// Count memo (exact counts learned from valid/empty responses are
    /// inserted here too).
    counts: HashMap<ConjunctiveQuery, u64>,
}

impl HistoryInner {
    fn entries(&self) -> usize {
        self.memo.len() + self.counts.len()
    }

    fn clear(&mut self) {
        self.memo.clear();
        self.empties.clear();
        self.overflows.clear();
        self.valids.clear();
        self.valid_rows.clear();
        self.counts.clear();
    }
}

/// A [`QueryExecutor`] that answers from history whenever inference allows.
///
/// Thread-safe: concurrent walkers share one cache (`&CachingExecutor`
/// implements `QueryExecutor` via the blanket impl).
#[derive(Debug)]
pub struct CachingExecutor<F> {
    interface: F,
    inner: RwLock<HistoryInner>,
    capacity: usize,
    /// Interface charges that predate this executor (see
    /// `DirectExecutor` — sequential samplers report only their own cost).
    charge_baseline: u64,
    requests: AtomicU64,
    memo_hits: AtomicU64,
    empty_rule_hits: AtomicU64,
    overflow_rule_hits: AtomicU64,
    filter_rule_hits: AtomicU64,
    count_memo_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Default cache capacity (entries across memo + counts).
pub const DEFAULT_CACHE_CAPACITY: usize = 250_000;

impl<F: FormInterface> CachingExecutor<F> {
    /// Wrap an interface with an inference cache of default capacity.
    pub fn new(interface: F) -> Self {
        Self::with_capacity(interface, DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap with an explicit entry capacity. When exceeded, the whole cache
    /// is dropped (cold restart) — crude but bounded and side-effect free;
    /// the eviction counter records it.
    pub fn with_capacity(interface: F, capacity: usize) -> Self {
        let charge_baseline = interface.queries_issued();
        CachingExecutor {
            interface,
            charge_baseline,
            inner: RwLock::new(HistoryInner::default()),
            capacity: capacity.max(2),
            requests: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            empty_rule_hits: AtomicU64::new(0),
            overflow_rule_hits: AtomicU64::new(0),
            filter_rule_hits: AtomicU64::new(0),
            count_memo_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The wrapped interface.
    pub fn interface(&self) -> &F {
        &self.interface
    }

    /// Hit/miss counters.
    pub fn history_stats(&self) -> HistoryStats {
        HistoryStats {
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            empty_rule_hits: self.empty_rule_hits.load(Ordering::Relaxed),
            overflow_rule_hits: self.overflow_rule_hits.load(Ordering::Relaxed),
            filter_rule_hits: self.filter_rule_hits.load(Ordering::Relaxed),
            count_memo_hits: self.count_memo_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Try to answer `query` purely from history.
    fn infer(&self, query: &ConjunctiveQuery) -> Option<Classified> {
        let inner = self.inner.read();
        // Rule 1: memo.
        if let Some(hit) = inner.memo.get(query) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Some(hit.clone());
        }
        // Rule 2: a remembered empty subset ⇒ empty.
        if inner.empties.any_subset_of(query) {
            self.empty_rule_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Classified { class: Classification::Empty, rows: None });
        }
        // Rule 3: remembered overflowing superset ⇒ overflow.
        if inner.overflows.any_superset_of(query) {
            self.overflow_rule_hits.fetch_add(1, Ordering::Relaxed);
            return Some(Classified { class: Classification::Overflow, rows: None });
        }
        // Rule 4: remembered valid ancestor ⇒ filter locally.
        if let Some(ancestor) = inner.valids.find_subset_of(query) {
            let rows = inner.valid_rows.get(ancestor).expect("valids have rows");
            let filtered: Vec<Row> =
                rows.iter().filter(|r| query.matches(&r.values)).cloned().collect();
            self.filter_rule_hits.fetch_add(1, Ordering::Relaxed);
            let class = if filtered.is_empty() {
                Classification::Empty
            } else {
                Classification::Valid
            };
            let rows =
                if filtered.is_empty() { None } else { Some(Arc::<[Row]>::from(filtered)) };
            return Some(Classified { class, rows });
        }
        None
    }

    /// Record a charged response.
    fn remember(&self, query: &ConjunctiveQuery, result: &Classified) {
        let mut inner = self.inner.write();
        if inner.entries() >= self.capacity {
            inner.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        match result.class {
            Classification::Empty => {
                // Keep the set minimal-ish: skip if already implied.
                if !inner.empties.any_subset_of(query) {
                    inner.empties.insert(query);
                }
                inner.counts.insert(query.clone(), 0);
            }
            Classification::Overflow => {
                if !inner.overflows.any_superset_of(query) {
                    inner.overflows.insert(query);
                }
            }
            Classification::Valid => {
                let rows = result.rows.clone().expect("valid carries rows");
                inner.counts.insert(query.clone(), rows.len() as u64);
                if !inner.valid_rows.contains_key(query) {
                    inner.valids.insert(query);
                    inner.valid_rows.insert(query.clone(), rows);
                }
            }
        }
        inner.memo.insert(query.clone(), result.clone());
    }
}

impl<F: FormInterface> QueryExecutor for CachingExecutor<F> {
    fn classify(&self, query: &ConjunctiveQuery) -> Result<Classified, InterfaceError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(hit) = self.infer(query) {
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let resp = self.interface.execute(query)?;
        let class = resp.classification();
        let rows = match class {
            Classification::Valid => Some(Arc::<[Row]>::from(resp.rows)),
            _ => None,
        };
        let result = Classified { class, rows };
        self.remember(query, &result);
        Ok(result)
    }

    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        {
            let inner = self.inner.read();
            if let Some(&c) = inner.counts.get(query) {
                self.count_memo_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(c);
            }
            // An inferable empty has count 0 without a probe.
            if inner.empties.any_subset_of(query) {
                self.empty_rule_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(0);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let c = self.interface.count(query)?;
        let mut inner = self.inner.write();
        if inner.entries() >= self.capacity {
            inner.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        inner.counts.insert(query.clone(), c);
        Ok(c)
    }

    fn schema(&self) -> &Schema {
        self.interface.schema()
    }

    fn result_limit(&self) -> usize {
        self.interface.result_limit()
    }

    fn supports_count(&self) -> bool {
        self.interface.supports_count()
    }

    fn queries_issued(&self) -> u64 {
        self.interface.queries_issued().saturating_sub(self.charge_baseline)
    }

    fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::AttrId;
    use hdsampler_workload::figure1_db;

    fn q(pairs: &[(u16, u16)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_pairs(pairs.iter().map(|&(a, v)| (AttrId(a), v))).unwrap()
    }

    #[test]
    fn memo_absorbs_repeats() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        for _ in 0..5 {
            exec.classify(&q(&[(0, 0)])).unwrap();
        }
        assert_eq!(exec.queries_issued(), 1);
        assert_eq!(exec.requests(), 5);
        assert_eq!(exec.history_stats().memo_hits, 4);
    }

    #[test]
    fn empty_subset_rule() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        // a1=1 ∧ a2=0 is empty.
        exec.classify(&q(&[(0, 1), (1, 0)])).unwrap();
        // Its refinement must be answered without a charge.
        let before = exec.queries_issued();
        let c = exec.classify(&q(&[(0, 1), (1, 0), (2, 1)])).unwrap();
        assert_eq!(c.class, Classification::Empty);
        assert_eq!(exec.queries_issued(), before);
        assert_eq!(exec.history_stats().empty_rule_hits, 1);
    }

    #[test]
    fn overflow_superset_rule() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        // a1=0 ∧ a2=1 overflows (t2, t3 behind k=1).
        exec.classify(&q(&[(0, 0), (1, 1)])).unwrap();
        // The broader query a2=1 must be inferred overflowing, free.
        let before = exec.queries_issued();
        let c = exec.classify(&q(&[(1, 1)])).unwrap();
        assert_eq!(c.class, Classification::Overflow);
        assert_eq!(exec.queries_issued(), before);
        assert_eq!(exec.history_stats().overflow_rule_hits, 1);
    }

    #[test]
    fn valid_ancestor_filter_rule() {
        let db = figure1_db(2); // k=2: a1=0 ∧ a2=1 is now valid (t2, t3).
        let exec = CachingExecutor::new(&db);
        let parent = exec.classify(&q(&[(0, 0), (1, 1)])).unwrap();
        assert_eq!(parent.class, Classification::Valid);
        assert_eq!(parent.result_size(), 2);

        let before = exec.queries_issued();
        // Refinement a3=0 isolates t2 — derivable by local filtering.
        let child = exec.classify(&q(&[(0, 0), (1, 1), (2, 0)])).unwrap();
        assert_eq!(child.class, Classification::Valid);
        assert_eq!(child.result_size(), 1);
        assert_eq!(child.rows.unwrap()[0].values.as_ref(), &[0, 1, 0]);
        assert_eq!(exec.queries_issued(), before, "derived without a charge");
        assert_eq!(exec.history_stats().filter_rule_hits, 1);
    }

    #[test]
    fn valid_ancestor_filter_to_empty() {
        // a1=0 ∧ a2=0 holds only t1 = (0,0,1); refining with a3=0 filters
        // the cached single row away, deriving Empty locally.
        let db = figure1_db(2);
        let exec = CachingExecutor::new(&db);
        let parent = exec.classify(&q(&[(0, 0), (1, 0)])).unwrap();
        assert_eq!(parent.class, Classification::Valid);

        let before = exec.queries_issued();
        let derived = exec.classify(&q(&[(0, 0), (1, 0), (2, 0)])).unwrap();
        assert_eq!(derived.class, Classification::Empty);
        assert!(derived.rows.is_none());
        assert_eq!(exec.queries_issued(), before, "filtered locally");
        assert_eq!(exec.history_stats().filter_rule_hits, 1);
    }

    #[test]
    fn inference_agrees_with_direct_evaluation_exhaustively() {
        // Ask every query of depth ≤ 3 twice — once against a cold direct
        // interface, once against a warmed cache — and compare classes and
        // row sets.
        for k in [1usize, 2, 3] {
            let db_direct = figure1_db(k);
            let db_cached = figure1_db(k);
            let cached = CachingExecutor::new(&db_cached);
            let direct = crate::executor::DirectExecutor::new(&db_direct);

            let mut all_queries = vec![ConjunctiveQuery::empty()];
            for a in 0..3u16 {
                for v in 0..2u16 {
                    let mut next = Vec::new();
                    for base in &all_queries {
                        if !base.binds(AttrId(a)) {
                            next.push(base.refine(AttrId(a), v).unwrap());
                        }
                    }
                    all_queries.extend(next);
                }
            }
            // Two passes: the second is served heavily from inference.
            for _pass in 0..2 {
                for query in &all_queries {
                    let d = direct.classify(query).unwrap();
                    let c = cached.classify(query).unwrap();
                    assert_eq!(d.class, c.class, "k={k} q={query:?}");
                    let mut dk: Vec<u64> =
                        d.rows.iter().flat_map(|r| r.iter().map(|x| x.key)).collect();
                    let mut ck: Vec<u64> =
                        c.rows.iter().flat_map(|r| r.iter().map(|x| x.key)).collect();
                    dk.sort_unstable();
                    ck.sort_unstable();
                    assert_eq!(dk, ck, "k={k} q={query:?}");
                }
            }
            assert!(
                cached.queries_issued() < direct.queries_issued(),
                "cache must save charges (k={k}): {} vs {}",
                cached.queries_issued(),
                direct.queries_issued()
            );
        }
    }

    #[test]
    fn count_memo_and_learned_counts() {
        use hdsampler_hidden_db::{CountMode, HiddenDb};
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema))
            .result_limit(2)
            .count_mode(CountMode::Exact);
        for vals in [[0u16, 0], [0, 1], [1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap()).unwrap();
        }
        let db = b.finish();
        let exec = CachingExecutor::new(&db);

        assert_eq!(exec.count(&q(&[(0, 0)])).unwrap(), 2);
        assert_eq!(exec.count(&q(&[(0, 0)])).unwrap(), 2);
        assert_eq!(exec.queries_issued(), 1, "second probe memoized");

        // A valid classification teaches the cache the exact count.
        exec.classify(&q(&[(0, 1)])).unwrap();
        let before = exec.queries_issued();
        assert_eq!(exec.count(&q(&[(0, 1)])).unwrap(), 1);
        assert_eq!(exec.queries_issued(), before, "count learned from rows");
    }

    #[test]
    fn capacity_bound_evicts() {
        let db = figure1_db(1);
        let exec = CachingExecutor::with_capacity(&db, 4);
        // 3 attrs × 2 values of depth-1 queries + deeper ones: generate
        // more than 16 distinct queries.
        let mut issued = Vec::new();
        for a in 0..3u16 {
            for v in 0..2u16 {
                issued.push(q(&[(a, v)]));
                for a2 in 0..3u16 {
                    if a2 != a {
                        for v2 in 0..2u16 {
                            issued.push(q(&[(a, v), (a2, v2)]));
                        }
                    }
                }
            }
        }
        for query in &issued {
            let _ = exec.classify(query);
        }
        assert!(exec.history_stats().evictions >= 1, "capacity must trigger eviction");
        // Still correct after eviction.
        let c = exec.classify(&q(&[(0, 1)])).unwrap();
        assert_eq!(c.class, Classification::Valid);
    }
}
