//! Query-history cache with containment inference (§3.2, ref [2]).
//!
//! "This module also keeps track of the query history and results to ensure
//! that the random query generation process accumulates savings by not
//! issuing the same query twice, or queries whose results can be inferred
//! from the query history."
//!
//! Four inference rules answer a query without touching the site:
//!
//! 1. **Memo** — the exact query was asked before.
//! 2. **Empty-subset** — some remembered *empty* query's predicate set is a
//!    subset of the new query's: a refinement of an empty query is empty.
//! 3. **Overflow-superset** — the new query's predicate set is a subset of
//!    some remembered *overflowing* query's: a broadening of an overflowing
//!    query overflows. (Samplers only need the classification of
//!    overflowing nodes, never their rows — so this rule fully answers.)
//! 4. **Valid-ancestor filtering** — some remembered *valid* query's
//!    predicate set is a subset of the new query's: the new result is
//!    computed by filtering the remembered (complete) row list locally.
//!
//! Counts are memoized separately; a valid (complete) response additionally
//! reveals its exact count regardless of how noisy the site's banner is.
//!
//! With per-walk attribute scrambling, rules 2–4 fire *across* walks that
//! constrained the same values in different orders — exactly the repeat
//! structure random drill-downs generate in the upper tree.
//!
//! ## Tiers and learn-time stamps
//!
//! The sharded in-memory state above is the **L1** tier. An optional
//! **L2** tier ([`CachingExecutor::with_l2`]) sits behind it: a persistent
//! fact log ([`crate::l2::L2Log`]) loaded into its own containment index
//! at attach time. L1 misses consult L2 before reporting a miss; L2 hits
//! are promoted into L1 and counted per tier, and newly wire-learned
//! facts are written behind to the log, so the next run against the same
//! site starts warm.
//!
//! Every fact carries the site-clock time it was learned at
//! ([`CachingExecutor::record_response_at`]). A history hit reports the
//! *answering* fact's stamp ([`HistoryHit::learned_at`]), which is the
//! exact causal floor for a cooperative walker resuming on that hit —
//! facts loaded from L2 were known before the run began and stamp `0`.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use hdsampler_model::{
    Classification, ConjunctiveQuery, FormInterface, InterfaceError, Predicate, Row, Schema,
};

use crate::executor::{Classified, QueryExecutor};
use crate::l2::{FactRecord, L2Log};

/// Cache-hit counters, by rule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistoryStats {
    /// Number of shards the cache state is split into (autotuned from the
    /// host topology unless overridden via
    /// [`CachingExecutor::with_shards`]).
    pub shard_count: usize,
    /// Rule 1 hits (exact memo).
    pub memo_hits: u64,
    /// Rule 2 hits (empty-subset).
    pub empty_rule_hits: u64,
    /// Rule 3 hits (overflow-superset).
    pub overflow_rule_hits: u64,
    /// Rule 4 hits (valid-ancestor filtering).
    pub filter_rule_hits: u64,
    /// Count-probe memo hits.
    pub count_memo_hits: u64,
    /// Requests that had to be charged at the interface.
    pub misses: u64,
    /// Capacity-bound eviction passes (any layer).
    pub evictions: u64,
    /// Eviction passes that had to cold-restart a whole shard —
    /// containment facts alone busted the bound, so even the protected
    /// empty/overflow sets were dropped.
    pub cold_restarts: u64,
    /// Requests the persistent L2 tier answered after an L1 miss.
    pub l2_hits: u64,
    /// Requests that missed both tiers with an L2 attached.
    pub l2_misses: u64,
    /// Wire-learned facts written behind to the L2 log.
    pub l2_puts: u64,
    /// Facts loaded from the L2 log at attach time.
    pub l2_loads: u64,
    /// Torn/garbage log lines skipped while loading the L2 tier.
    pub l2_skipped: u64,
}

impl HistoryStats {
    /// Total requests answered from history (either tier).
    pub fn total_hits(&self) -> u64 {
        self.memo_hits
            + self.empty_rule_hits
            + self.overflow_rule_hits
            + self.filter_rule_hits
            + self.count_memo_hits
            + self.l2_hits
    }
}

/// FNV-1a: the hash for shard selection and the per-shard maps. Cheap on
/// the short structured keys this cache stores; DoS resistance is not a
/// concern because every key comes from our own walkers.
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        // FNV-1a offset basis — starting from 0 would absorb leading zero
        // bytes and degrade bucket distribution.
        FnvHasher(0xCBF2_9CE4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FnvHasher>>;

/// A set of predicate-sets supporting subset/superset queries via a
/// per-predicate inverted index. Every stored set carries the site-clock
/// stamp it was learned at, so an inference can report the causal floor
/// of its witness.
#[derive(Debug, Default)]
struct ContainmentSet {
    queries: Vec<ConjunctiveQuery>,
    /// Learn-time stamps, parallel to `queries`.
    stamps: Vec<u64>,
    /// predicate → indices of stored queries containing it.
    by_pred: FnvMap<Predicate, Vec<u32>>,
    /// The stored empty query, if any — a subset of everything, and
    /// invisible to the predicate index above, so subset searches fall
    /// back to it explicitly.
    empty: Option<(ConjunctiveQuery, u64)>,
}

impl ContainmentSet {
    fn insert(&mut self, q: &ConjunctiveQuery, at: u64) {
        if q.is_empty() {
            self.empty = Some((q.clone(), at));
            return;
        }
        let ix = self.queries.len() as u32;
        for p in q.predicates() {
            self.by_pred.entry(*p).or_default().push(ix);
        }
        self.queries.push(q.clone());
        self.stamps.push(at);
    }

    fn len(&self) -> usize {
        self.queries.len() + usize::from(self.empty.is_some())
    }

    /// Is some stored set a subset of `q`'s predicates?
    fn any_subset_of(&self, q: &ConjunctiveQuery) -> bool {
        self.find_subset_of(q).is_some()
    }

    /// Find a stored set that is a subset of `q`'s predicates, with its
    /// learn-time stamp.
    ///
    /// Every stored non-trivial subset shares at least one predicate with
    /// `q`, so the candidates are exactly the entries of `q`'s predicates'
    /// posting lists. They are scanned smallest-posting-first and tested in
    /// place — no candidate union is ever materialized, and the first hit
    /// returns immediately. A candidate sharing several predicates with `q`
    /// may be tested more than once; the duplicate work is bounded by what
    /// the old extend/sort/dedup pass also paid, without its allocation.
    /// The stored empty query (a subset of everything) is the fallback when
    /// no indexed candidate matches.
    fn find_subset_of(&self, q: &ConjunctiveQuery) -> Option<(&ConjunctiveQuery, u64)> {
        let mut lists: Vec<&[u32]> = q
            .predicates()
            .iter()
            .filter_map(|p| self.by_pred.get(p).map(Vec::as_slice))
            .collect();
        lists.sort_unstable_by_key(|l| l.len());
        for list in lists {
            for &ix in list {
                let cand = &self.queries[ix as usize];
                if q.is_refinement_of(cand) {
                    return Some((cand, self.stamps[ix as usize]));
                }
            }
        }
        self.empty.as_ref().map(|(q, at)| (q, *at))
    }

    /// Is `q` a subset of some stored set (i.e. does a stored superset
    /// exist)?
    fn any_superset_of(&self, q: &ConjunctiveQuery) -> bool {
        self.find_superset_of(q).is_some()
    }

    /// Find a stored superset of `q`, with its learn-time stamp.
    fn find_superset_of(&self, q: &ConjunctiveQuery) -> Option<(&ConjunctiveQuery, u64)> {
        if q.is_empty() {
            if let Some((eq, at)) = self.empty.as_ref() {
                return Some((eq, *at));
            }
            return self.queries.first().map(|first| (first, self.stamps[0]));
        }
        // A superset must contain *every* predicate of q, so scanning the
        // smallest of q's posting lists covers all candidates.
        let smallest = q
            .predicates()
            .iter()
            .map(|p| self.by_pred.get(p).map_or(&[][..], Vec::as_slice))
            .min_by_key(|l| l.len())
            .expect("non-empty query has predicates");
        smallest
            .iter()
            .find(|&&ix| self.queries[ix as usize].is_refinement_of(q))
            .map(|&ix| (&self.queries[ix as usize], self.stamps[ix as usize]))
    }

    fn clear(&mut self) {
        self.queries.clear();
        self.stamps.clear();
        self.by_pred.clear();
        self.empty = None;
    }
}

/// What an eviction pass had to shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Eviction {
    /// Capacity not reached; nothing evicted.
    None,
    /// Rederivable layers (memo, rule-4 rows, oldest counts) made room;
    /// the empty/overflow containment facts survived.
    Layered,
    /// Containment facts alone busted the bound: whole-shard cold restart.
    ColdRestart,
}

/// Interior cache state. Memo and count values carry the learn-time
/// stamp of the fact that produced them.
#[derive(Debug, Default)]
struct HistoryInner {
    /// Rule 1: exact memo of classifications (+ rows for valid), stamped.
    memo: FnvMap<ConjunctiveQuery, (Classified, u64)>,
    /// Rule 2 support: known-empty predicate sets (kept minimal-ish).
    empties: ContainmentSet,
    /// Rule 3 support: known-overflowing predicate sets (kept maximal-ish).
    overflows: ContainmentSet,
    /// Rule 4 support: known-valid queries with their complete rows.
    valids: ContainmentSet,
    valid_rows: FnvMap<ConjunctiveQuery, Arc<[Row]>>,
    /// Count memo, stamped (exact counts learned from valid/empty
    /// responses are inserted here too).
    counts: FnvMap<ConjunctiveQuery, (u64, u64)>,
    /// Insertion order of `counts` keys (oldest first), so count pressure
    /// evicts the stalest memoized counts instead of the whole shard.
    count_order: std::collections::VecDeque<ConjunctiveQuery>,
}

impl HistoryInner {
    fn entries(&self) -> usize {
        // Everything that grows: the exact-match maps and the containment
        // sets. Counting the latter keeps the capacity contract a real
        // memory bound — a long run over a huge query space must not grow
        // `overflows`/`empties`/`valids` without limit.
        self.memo.len()
            + self.counts.len()
            + self.empties.len()
            + self.overflows.len()
            + self.valids.len()
    }

    /// Record a count, tracking first-insert order for layered eviction.
    fn learn_count(&mut self, query: &ConjunctiveQuery, count: u64, at: u64) {
        if self.counts.insert(query.clone(), (count, at)).is_none() {
            self.count_order.push_back(query.clone());
        }
    }

    /// Absorb one persisted fact (building the L2 tier's index).
    fn absorb(&mut self, rec: &FactRecord) {
        match rec.kind.as_str() {
            "count" => {
                if let Some(c) = rec.count {
                    self.learn_count(&rec.query, c, rec.learned_at);
                }
            }
            "empty" => {
                if !self.empties.any_subset_of(&rec.query) {
                    self.empties.insert(&rec.query, rec.learned_at);
                }
                self.learn_count(&rec.query, 0, rec.learned_at);
            }
            "overflow" if !self.overflows.any_superset_of(&rec.query) => {
                self.overflows.insert(&rec.query, rec.learned_at);
            }
            "valid" => {
                if let Some(rows) = &rec.rows {
                    self.learn_count(&rec.query, rows.len() as u64, rec.learned_at);
                    if !self.valid_rows.contains_key(&rec.query) {
                        self.valids.insert(&rec.query, rec.learned_at);
                        self.valid_rows
                            .insert(rec.query.clone(), Arc::from(rows.clone()));
                    }
                }
            }
            _ => {}
        }
    }

    /// Run the containment rules (2–4) against this one index — the L2
    /// tier's lookup, where all facts live in a single `HistoryInner`
    /// rather than L1's shards. The memo layer is skipped: an L2 index
    /// never fills it (exact repeats are caught by the subset/superset
    /// rules, which include equality).
    fn infer_local(&self, query: &ConjunctiveQuery) -> Option<Classified> {
        if self.empties.any_subset_of(query) {
            return Some(Classified {
                class: Classification::Empty,
                rows: None,
            });
        }
        if self.overflows.any_superset_of(query) {
            return Some(Classified {
                class: Classification::Overflow,
                rows: None,
            });
        }
        if let Some((ancestor, _)) = self.valids.find_subset_of(query) {
            let rows = self.valid_rows.get(ancestor).expect("valids have rows");
            let filtered: Vec<Row> = rows
                .iter()
                .filter(|r| query.matches(&r.values))
                .cloned()
                .collect();
            let class = if filtered.is_empty() {
                Classification::Empty
            } else {
                Classification::Valid
            };
            let rows = if filtered.is_empty() {
                None
            } else {
                Some(Arc::<[Row]>::from(filtered))
            };
            return Some(Classified { class, rows });
        }
        None
    }

    /// Make room for one charged insert, shedding state in layers of
    /// increasing preciousness. The memo goes first — every entry is
    /// rederivable, from the containment sets or by re-asking. Next the
    /// rule-4 support (`valids` + `valid_rows`; without its rows a valid
    /// ancestor has no inference power, so the two always go together —
    /// the exact counts those rows taught stay in `counts`). Then the
    /// oldest memoized counts, one by one. The empty/overflow containment
    /// facts — each one a budgeted page fetch whose classification powers
    /// rules 2 and 3 — are dropped only in the final cold restart, when
    /// they alone bust the bound.
    fn evict_for_insert(&mut self, capacity: usize) -> Eviction {
        if self.entries() < capacity {
            return Eviction::None;
        }
        self.memo.clear();
        if self.entries() >= capacity {
            self.valids.clear();
            self.valid_rows.clear();
        }
        while self.entries() >= capacity {
            let Some(oldest) = self.count_order.pop_front() else {
                break;
            };
            self.counts.remove(&oldest);
        }
        if self.entries() >= capacity {
            self.clear();
            return Eviction::ColdRestart;
        }
        Eviction::Layered
    }

    fn clear(&mut self) {
        self.memo.clear();
        self.empties.clear();
        self.overflows.clear();
        self.valids.clear();
        self.valid_rows.clear();
        self.counts.clear();
        self.count_order.clear();
    }
}

/// A [`QueryExecutor`] that answers from history whenever inference allows.
///
/// Thread-safe: concurrent walkers share one cache (`&CachingExecutor`
/// implements `QueryExecutor` via the blanket impl). The state is split
/// into [`autotuned_shard_count`] signature-keyed shards, each behind its own
/// `RwLock`: the exact-match structures (memo, counts) of a query live in
/// the shard its hash selects, so the common warm-cache path — a memo hit —
/// touches exactly one lock, and concurrent walkers' *writes* land on
/// different shards instead of serializing on a single global lock. The
/// containment rules (2–4) scan all shards under brief read locks, in the
/// same rule order as a single-lock cache, so inference outcomes and
/// hit/miss counters are identical to the unsharded semantics.
#[derive(Debug)]
pub struct CachingExecutor<F> {
    interface: F,
    shards: Box<[RwLock<HistoryInner>]>,
    /// `shards.len() - 1`; the shard count is a power of two.
    shard_mask: usize,
    /// Per-shard entry bound (total capacity / shard count).
    capacity_per_shard: usize,
    /// Interface charges that predate this executor (see
    /// `DirectExecutor` — sequential samplers report only their own cost).
    charge_baseline: u64,
    /// The persistent tier, when attached ([`CachingExecutor::with_l2`]).
    l2: Option<L2Tier>,
    requests: AtomicU64,
    memo_hits: AtomicU64,
    empty_rule_hits: AtomicU64,
    overflow_rule_hits: AtomicU64,
    filter_rule_hits: AtomicU64,
    count_memo_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    cold_restarts: AtomicU64,
    l2_hits: AtomicU64,
    l2_misses: AtomicU64,
    l2_puts: AtomicU64,
    l2_loads: AtomicU64,
    l2_skipped: AtomicU64,
}

/// The attached persistent tier: the log (write-behind target) plus its
/// facts loaded into one containment index. A single lock suffices — the
/// index is read-mostly after load, and it is only consulted on L1
/// misses, off the memo fast path.
#[derive(Debug)]
struct L2Tier {
    log: Arc<L2Log>,
    index: RwLock<HistoryInner>,
}

/// Which tier answered a history hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTier {
    /// The sharded in-memory tier.
    L1,
    /// The persistent disk-backed tier.
    L2,
}

/// A history hit with its exact causal provenance: the answer, the
/// site-clock time the answering fact was learned at (`0` for facts that
/// predate the run — i.e. everything loaded from L2), and the tier that
/// answered.
#[derive(Debug, Clone)]
pub struct HistoryHit {
    /// The classification answered from history.
    pub answer: Classified,
    /// Learn time of the answering fact on the run's site clock (ms).
    pub learned_at: u64,
    /// Tier that answered.
    pub tier: HitTier,
}

/// Default cache capacity (entries across memo + counts).
pub const DEFAULT_CACHE_CAPACITY: usize = 250_000;

/// Upper bound on the autotuned shard count: past this, the all-shard
/// scans of the containment rules (2–4) cost more than the extra write
/// spread buys, even on very wide hosts.
pub const MAX_AUTOTUNED_SHARDS: usize = 64;

/// Shard count derived from the host: twice the available parallelism
/// (walkers outnumbering cores still spread their writes), rounded up to a
/// power of two and capped at [`MAX_AUTOTUNED_SHARDS`]. Falls back to 16 —
/// the old fixed `DEFAULT_SHARD_COUNT` — when the topology is unreadable.
/// Override per cache via [`CachingExecutor::with_shards`]; the chosen
/// count is reported in [`HistoryStats::shard_count`].
pub fn autotuned_shard_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_mul(2).next_power_of_two())
        .unwrap_or(16)
        .clamp(1, MAX_AUTOTUNED_SHARDS)
}

impl<F: FormInterface> CachingExecutor<F> {
    /// Wrap an interface with an inference cache of default capacity.
    pub fn new(interface: F) -> Self {
        Self::with_capacity(interface, DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap with an explicit entry capacity and the autotuned shard count.
    pub fn with_capacity(interface: F, capacity: usize) -> Self {
        Self::with_shards(interface, capacity, autotuned_shard_count())
    }

    /// Wrap with explicit capacity and shard count (rounded up to a power
    /// of two). `shards = 1` reproduces the old single-lock layout, which
    /// the contention benchmark uses as its baseline.
    ///
    /// When a shard exceeds its share of `capacity`, it sheds state in
    /// layers of increasing preciousness — memo, then rule-4 rows, then
    /// the oldest memoized counts — and cold-restarts the whole shard only
    /// when the empty/overflow containment facts alone bust the bound
    /// (each of those cost a budgeted page fetch to learn). The eviction
    /// counters record both kinds of pass.
    pub fn with_shards(interface: F, capacity: usize, shards: usize) -> Self {
        let shard_count = shards.max(1).next_power_of_two();
        let charge_baseline = interface.queries_issued();
        CachingExecutor {
            interface,
            charge_baseline,
            shards: (0..shard_count)
                .map(|_| RwLock::new(HistoryInner::default()))
                .collect(),
            shard_mask: shard_count - 1,
            capacity_per_shard: (capacity / shard_count).max(2),
            l2: None,
            requests: AtomicU64::new(0),
            memo_hits: AtomicU64::new(0),
            empty_rule_hits: AtomicU64::new(0),
            overflow_rule_hits: AtomicU64::new(0),
            filter_rule_hits: AtomicU64::new(0),
            count_memo_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            cold_restarts: AtomicU64::new(0),
            l2_hits: AtomicU64::new(0),
            l2_misses: AtomicU64::new(0),
            l2_puts: AtomicU64::new(0),
            l2_loads: AtomicU64::new(0),
            l2_skipped: AtomicU64::new(0),
        }
    }

    /// Attach a persistent L2 tier: load the log's facts into the tier's
    /// index (counting loads and skipped torn lines), consult it on every
    /// L1 miss, and write newly learned facts behind to it.
    ///
    /// Facts loaded here were learned before this run began, so history
    /// hits they answer carry a causal floor of `0`.
    pub fn with_l2(mut self, log: Arc<L2Log>) -> Self {
        let mut index = HistoryInner::default();
        let before_skipped = log.skipped();
        match log.load() {
            Ok(records) => {
                self.l2_loads.store(records.len() as u64, Ordering::Relaxed);
                for rec in &records {
                    index.absorb(rec);
                }
            }
            Err(_) => {
                // An unreadable log directory warm-starts nothing; the
                // executor still works (and still tries to write behind).
            }
        }
        self.l2_skipped
            .store(log.skipped() - before_skipped, Ordering::Relaxed);
        self.l2 = Some(L2Tier {
            log,
            index: RwLock::new(index),
        });
        self
    }

    /// The attached L2 log, if any.
    pub fn l2_log(&self) -> Option<&Arc<L2Log>> {
        self.l2.as_ref().map(|t| &t.log)
    }

    /// The wrapped interface.
    pub fn interface(&self) -> &F {
        &self.interface
    }

    /// Number of shards the cache state is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `query`'s exact-match state.
    ///
    /// Uses the same cheap FNV-1a hash as the per-shard maps: shard
    /// selection sits on the memo-hit fast path and needs no DoS
    /// resistance, because every query comes from our own walkers.
    fn shard_of(&self, query: &ConjunctiveQuery) -> &RwLock<HistoryInner> {
        if self.shard_mask == 0 {
            return &self.shards[0];
        }
        let mut h = FnvHasher::default();
        query.hash(&mut h);
        use std::hash::Hasher as _;
        // Select the shard from high hash bits (48..): the per-shard maps
        // reuse this same FNV value, and hashbrown derives bucket indices
        // from the low bits and control bytes from the top 7 — taking the
        // shard from either range would make all of a shard's keys collide
        // inside its own map.
        &self.shards[((h.finish() >> 48) as usize) & self.shard_mask]
    }

    /// Hit/miss counters.
    pub fn history_stats(&self) -> HistoryStats {
        HistoryStats {
            shard_count: self.shards.len(),
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            empty_rule_hits: self.empty_rule_hits.load(Ordering::Relaxed),
            overflow_rule_hits: self.overflow_rule_hits.load(Ordering::Relaxed),
            filter_rule_hits: self.filter_rule_hits.load(Ordering::Relaxed),
            count_memo_hits: self.count_memo_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            cold_restarts: self.cold_restarts.load(Ordering::Relaxed),
            l2_hits: self.l2_hits.load(Ordering::Relaxed),
            l2_misses: self.l2_misses.load(Ordering::Relaxed),
            l2_puts: self.l2_puts.load(Ordering::Relaxed),
            l2_loads: self.l2_loads.load(Ordering::Relaxed),
            l2_skipped: self.l2_skipped.load(Ordering::Relaxed),
        }
    }

    /// Bump the eviction counters for one eviction pass.
    fn record_eviction(&self, outcome: Eviction) {
        match outcome {
            Eviction::None => {}
            Eviction::Layered => {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            Eviction::ColdRestart => {
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.cold_restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Try to answer `query` purely from the in-memory (L1) history,
    /// reporting the learn-time stamp of the answering witness.
    ///
    /// Rule order matches the unsharded cache exactly: memo (own shard
    /// only — that is where the exact query lives), then each containment
    /// rule across every shard before the next rule is considered.
    fn infer(&self, query: &ConjunctiveQuery) -> Option<(Classified, u64)> {
        // Rule 1: memo.
        if let Some((hit, at)) = self.shard_of(query).read().memo.get(query) {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return Some((hit.clone(), *at));
        }
        // Rules 2–4 in one pass: each shard's lock is taken exactly once,
        // with all three containment rules checked under it. Rule-major
        // precedence is restored afterwards from the collected flags, which
        // is sound because on a history fed by one consistent interface the
        // rules cannot contradict each other across shards:
        //
        // * rule 2 (⇒ count = 0) and rule 3 (⇒ count > k) are mutually
        //   exclusive, so their relative order is immaterial;
        // * rule 3 and rule 4 (valid ancestor ⇒ count ≤ k) are likewise
        //   exclusive;
        // * when rules 2 and 4 both apply, the rule-4 filter necessarily
        //   comes up empty and yields the same `Classified` — only the
        //   counter attribution differs, and the flags below attribute it
        //   to rule 2 exactly as the rule-major (unsharded) order does.
        let mut empty_at: Option<u64> = None;
        let mut overflow_at: Option<u64> = None;
        let mut filtered: Option<(Vec<Row>, u64)> = None;
        for shard in self.shards.iter() {
            let inner = shard.read();
            if let Some((_, at)) = inner.empties.find_subset_of(query) {
                empty_at = Some(at);
                // Rule 2 dominates every later finding; stop scanning.
                break;
            }
            if overflow_at.is_none() {
                if let Some((_, at)) = inner.overflows.find_superset_of(query) {
                    overflow_at = Some(at);
                    continue;
                }
            }
            if overflow_at.is_none() && filtered.is_none() {
                if let Some((ancestor, at)) = inner.valids.find_subset_of(query) {
                    let rows = inner.valid_rows.get(ancestor).expect("valids have rows");
                    filtered = Some((
                        rows.iter()
                            .filter(|r| query.matches(&r.values))
                            .cloned()
                            .collect(),
                        at,
                    ));
                }
            }
        }
        let (derived, at) = if let Some(at) = empty_at {
            self.empty_rule_hits.fetch_add(1, Ordering::Relaxed);
            (
                Classified {
                    class: Classification::Empty,
                    rows: None,
                },
                at,
            )
        } else if let Some(at) = overflow_at {
            self.overflow_rule_hits.fetch_add(1, Ordering::Relaxed);
            (
                Classified {
                    class: Classification::Overflow,
                    rows: None,
                },
                at,
            )
        } else if let Some((filtered, at)) = filtered {
            self.filter_rule_hits.fetch_add(1, Ordering::Relaxed);
            let class = if filtered.is_empty() {
                Classification::Empty
            } else {
                Classification::Valid
            };
            let rows = if filtered.is_empty() {
                None
            } else {
                Some(Arc::<[Row]>::from(filtered))
            };
            (Classified { class, rows }, at)
        } else {
            return None;
        };
        // Memoize the derived answer: re-asking the same query becomes a
        // single-shard memo hit instead of another cross-shard containment
        // scan. Containment sets are left untouched (this result adds no
        // inference power, it only caches one), and a full shard must never
        // be *evicted* for a derived entry — that would trade learned facts
        // for a convenience cache. At capacity we simply skip caching;
        // inference stays correct, merely un-memoized, exactly like the
        // pre-memoization behavior.
        let mut inner = self.shard_of(query).write();
        if inner.entries() < self.capacity_per_shard {
            inner.memo.insert(query.clone(), (derived.clone(), at));
        }
        drop(inner);
        Some((derived, at))
    }

    /// Non-blocking half of [`QueryExecutor::classify`] for cooperative
    /// drivers: count the request and answer from history when inference
    /// allows. `None` means the query must be fetched over the wire — the
    /// miss is already counted, and the wire result must be fed back
    /// through [`CachingExecutor::record_response`] so the history keeps
    /// learning. `try_classify` + `record_response` is
    /// counter-for-counter equivalent to one `classify` call; the only
    /// difference is that the wire fetch happens outside the cache, where
    /// a single-threaded driver can keep hundreds of them in flight.
    pub fn try_classify(&self, query: &ConjunctiveQuery) -> Option<Classified> {
        self.try_classify_stamped(query).map(|h| h.answer)
    }

    /// [`try_classify`](CachingExecutor::try_classify) with exact causal
    /// provenance: which tier answered and the site-clock time the
    /// answering fact was learned at. A cooperative driver resuming a
    /// walker on this hit may floor the walker's clock at
    /// [`HistoryHit::learned_at`] instead of the conservative
    /// run-knowledge floor — an L2-answered fact was known before the run
    /// began and floors at `0`.
    pub fn try_classify_stamped(&self, query: &ConjunctiveQuery) -> Option<HistoryHit> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some((answer, learned_at)) = self.infer(query) {
            return Some(HistoryHit {
                answer,
                learned_at,
                tier: HitTier::L1,
            });
        }
        if let Some(tier) = &self.l2 {
            let answer = tier.index.read().infer_local(query);
            if let Some(answer) = answer {
                self.l2_hits.fetch_add(1, Ordering::Relaxed);
                // Promote into L1 — at floor 0 (the fact predates the run)
                // and without re-appending to the log (the fact is already
                // persisted; a write-behind here would duplicate it on
                // every warm run).
                self.remember(query, &answer, 0, false);
                return Some(HistoryHit {
                    answer,
                    learned_at: 0,
                    tier: HitTier::L2,
                });
            }
            self.l2_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Feed back a wire-fetched response for a query
    /// [`try_classify`](CachingExecutor::try_classify) missed on.
    /// Equivalent to [`record_response_at`](Self::record_response_at) at
    /// site-clock 0 — blocking samplers carry no virtual clock.
    pub fn record_response(&self, query: &ConjunctiveQuery, result: &Classified) {
        self.remember(query, result, 0, true);
    }

    /// Feed back a wire-fetched response learned at `at_ms` on the run's
    /// site clock. The stamp travels with the fact: later history hits it
    /// answers report it as their causal floor, and it is persisted with
    /// the fact when an L2 log is attached.
    pub fn record_response_at(&self, query: &ConjunctiveQuery, result: &Classified, at_ms: u64) {
        self.remember(query, result, at_ms, true);
    }

    /// Record a charged response in `query`'s shard, stamped `at`; when
    /// `persist` is set and an L2 log is attached, write the fact behind.
    fn remember(&self, query: &ConjunctiveQuery, result: &Classified, at: u64, persist: bool) {
        let mut inner = self.shard_of(query).write();
        self.record_eviction(inner.evict_for_insert(self.capacity_per_shard));
        match result.class {
            Classification::Empty => {
                // Keep the set minimal-ish: skip if already implied within
                // this shard. (Cross-shard redundancy costs memory, never
                // correctness: the rules scan every shard.)
                if !inner.empties.any_subset_of(query) {
                    inner.empties.insert(query, at);
                }
                inner.learn_count(query, 0, at);
            }
            Classification::Overflow => {
                if !inner.overflows.any_superset_of(query) {
                    inner.overflows.insert(query, at);
                }
            }
            Classification::Valid => {
                let rows = result.rows.clone().expect("valid carries rows");
                inner.learn_count(query, rows.len() as u64, at);
                if !inner.valid_rows.contains_key(query) {
                    inner.valids.insert(query, at);
                    inner.valid_rows.insert(query.clone(), rows);
                }
            }
        }
        inner.memo.insert(query.clone(), (result.clone(), at));
        drop(inner);
        if persist {
            self.put_l2(query, result, at);
        }
    }

    /// Write one wire-learned fact behind to the attached L2 log, if any.
    /// Log I/O errors are swallowed — persistence is an optimization, and
    /// a full disk must never fail a sampling run.
    fn put_l2(&self, query: &ConjunctiveQuery, result: &Classified, at: u64) {
        let Some(tier) = &self.l2 else {
            return;
        };
        let rec = match result.class {
            Classification::Empty => FactRecord::empty(query.clone(), at),
            Classification::Overflow => FactRecord::overflow(query.clone(), at),
            Classification::Valid => {
                let rows = result.rows.as_ref().expect("valid carries rows");
                FactRecord::valid(query.clone(), rows.to_vec(), at)
            }
        };
        if tier.log.append(&rec).is_ok() {
            self.l2_puts.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<F: FormInterface> QueryExecutor for CachingExecutor<F> {
    fn classify(&self, query: &ConjunctiveQuery) -> Result<Classified, InterfaceError> {
        if let Some(hit) = self.try_classify_stamped(query) {
            return Ok(hit.answer);
        }
        let result = Classified::from_response(self.interface.execute(query)?);
        self.remember(query, &result, 0, true);
        Ok(result)
    }

    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(&(c, _)) = self.shard_of(query).read().counts.get(query) {
            self.count_memo_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(c);
        }
        // An inferable empty has count 0 without a probe. Memoize the
        // derived zero (when the shard has room) so repeat probes become
        // single-shard count-memo hits instead of cross-shard rescans.
        if let Some(at) = self
            .shards
            .iter()
            .find_map(|s| s.read().empties.find_subset_of(query).map(|(_, at)| at))
        {
            self.empty_rule_hits.fetch_add(1, Ordering::Relaxed);
            let mut inner = self.shard_of(query).write();
            if inner.entries() < self.capacity_per_shard {
                inner.learn_count(query, 0, at);
            }
            return Ok(0);
        }
        // L2: a persisted count (or empty fact) answers without a probe;
        // promote it into L1 at floor 0.
        if let Some(tier) = &self.l2 {
            let found = {
                let idx = tier.index.read();
                if let Some(&(c, _)) = idx.counts.get(query) {
                    Some(c)
                } else if idx.empties.any_subset_of(query) {
                    Some(0)
                } else {
                    None
                }
            };
            if let Some(c) = found {
                self.l2_hits.fetch_add(1, Ordering::Relaxed);
                let mut inner = self.shard_of(query).write();
                self.record_eviction(inner.evict_for_insert(self.capacity_per_shard));
                inner.learn_count(query, c, 0);
                return Ok(c);
            }
            self.l2_misses.fetch_add(1, Ordering::Relaxed);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let c = self.interface.count(query)?;
        let mut inner = self.shard_of(query).write();
        self.record_eviction(inner.evict_for_insert(self.capacity_per_shard));
        inner.learn_count(query, c, 0);
        drop(inner);
        if let Some(tier) = &self.l2 {
            if tier
                .log
                .append(&FactRecord::count(query.clone(), c, 0))
                .is_ok()
            {
                self.l2_puts.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(c)
    }

    fn schema(&self) -> &Schema {
        self.interface.schema()
    }

    fn result_limit(&self) -> usize {
        self.interface.result_limit()
    }

    fn supports_count(&self) -> bool {
        self.interface.supports_count()
    }

    fn queries_issued(&self) -> u64 {
        self.interface
            .queries_issued()
            .saturating_sub(self.charge_baseline)
    }

    fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::AttrId;
    use hdsampler_workload::figure1_db;

    fn q(pairs: &[(u16, u16)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_pairs(pairs.iter().map(|&(a, v)| (AttrId(a), v))).unwrap()
    }

    #[test]
    fn autotune_picks_a_bounded_power_of_two() {
        let n = autotuned_shard_count();
        assert!(n.is_power_of_two(), "{n} must be a power of two");
        assert!((1..=MAX_AUTOTUNED_SHARDS).contains(&n));
        // The default constructors adopt it and report it in stats.
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        assert_eq!(exec.shard_count(), n);
        assert_eq!(exec.history_stats().shard_count, n);
        // An explicit override wins.
        let pinned = CachingExecutor::with_shards(&db, 1_000, 4);
        assert_eq!(pinned.history_stats().shard_count, 4);
    }

    #[test]
    fn memo_absorbs_repeats() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        for _ in 0..5 {
            exec.classify(&q(&[(0, 0)])).unwrap();
        }
        assert_eq!(exec.queries_issued(), 1);
        assert_eq!(exec.requests(), 5);
        assert_eq!(exec.history_stats().memo_hits, 4);
    }

    #[test]
    fn empty_subset_rule() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        // a1=1 ∧ a2=0 is empty.
        exec.classify(&q(&[(0, 1), (1, 0)])).unwrap();
        // Its refinement must be answered without a charge.
        let before = exec.queries_issued();
        let c = exec.classify(&q(&[(0, 1), (1, 0), (2, 1)])).unwrap();
        assert_eq!(c.class, Classification::Empty);
        assert_eq!(exec.queries_issued(), before);
        assert_eq!(exec.history_stats().empty_rule_hits, 1);
    }

    #[test]
    fn overflow_superset_rule() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        // a1=0 ∧ a2=1 overflows (t2, t3 behind k=1).
        exec.classify(&q(&[(0, 0), (1, 1)])).unwrap();
        // The broader query a2=1 must be inferred overflowing, free.
        let before = exec.queries_issued();
        let c = exec.classify(&q(&[(1, 1)])).unwrap();
        assert_eq!(c.class, Classification::Overflow);
        assert_eq!(exec.queries_issued(), before);
        assert_eq!(exec.history_stats().overflow_rule_hits, 1);
    }

    #[test]
    fn valid_ancestor_filter_rule() {
        let db = figure1_db(2); // k=2: a1=0 ∧ a2=1 is now valid (t2, t3).
        let exec = CachingExecutor::new(&db);
        let parent = exec.classify(&q(&[(0, 0), (1, 1)])).unwrap();
        assert_eq!(parent.class, Classification::Valid);
        assert_eq!(parent.result_size(), 2);

        let before = exec.queries_issued();
        // Refinement a3=0 isolates t2 — derivable by local filtering.
        let child = exec.classify(&q(&[(0, 0), (1, 1), (2, 0)])).unwrap();
        assert_eq!(child.class, Classification::Valid);
        assert_eq!(child.result_size(), 1);
        assert_eq!(child.rows.unwrap()[0].values.as_ref(), &[0, 1, 0]);
        assert_eq!(exec.queries_issued(), before, "derived without a charge");
        assert_eq!(exec.history_stats().filter_rule_hits, 1);
    }

    #[test]
    fn valid_ancestor_filter_to_empty() {
        // a1=0 ∧ a2=0 holds only t1 = (0,0,1); refining with a3=0 filters
        // the cached single row away, deriving Empty locally.
        let db = figure1_db(2);
        let exec = CachingExecutor::new(&db);
        let parent = exec.classify(&q(&[(0, 0), (1, 0)])).unwrap();
        assert_eq!(parent.class, Classification::Valid);

        let before = exec.queries_issued();
        let derived = exec.classify(&q(&[(0, 0), (1, 0), (2, 0)])).unwrap();
        assert_eq!(derived.class, Classification::Empty);
        assert!(derived.rows.is_none());
        assert_eq!(exec.queries_issued(), before, "filtered locally");
        assert_eq!(exec.history_stats().filter_rule_hits, 1);
    }

    #[test]
    fn inference_agrees_with_direct_evaluation_exhaustively() {
        // Ask every query of depth ≤ 3 twice — once against a cold direct
        // interface, once against a warmed cache — and compare classes and
        // row sets.
        for k in [1usize, 2, 3] {
            let db_direct = figure1_db(k);
            let db_cached = figure1_db(k);
            let cached = CachingExecutor::new(&db_cached);
            let direct = crate::executor::DirectExecutor::new(&db_direct);

            let mut all_queries = vec![ConjunctiveQuery::empty()];
            for a in 0..3u16 {
                for v in 0..2u16 {
                    let mut next = Vec::new();
                    for base in &all_queries {
                        if !base.binds(AttrId(a)) {
                            next.push(base.refine(AttrId(a), v).unwrap());
                        }
                    }
                    all_queries.extend(next);
                }
            }
            // Two passes: the second is served heavily from inference.
            for _pass in 0..2 {
                for query in &all_queries {
                    let d = direct.classify(query).unwrap();
                    let c = cached.classify(query).unwrap();
                    assert_eq!(d.class, c.class, "k={k} q={query:?}");
                    let mut dk: Vec<u64> = d
                        .rows
                        .iter()
                        .flat_map(|r| r.iter().map(|x| x.key))
                        .collect();
                    let mut ck: Vec<u64> = c
                        .rows
                        .iter()
                        .flat_map(|r| r.iter().map(|x| x.key))
                        .collect();
                    dk.sort_unstable();
                    ck.sort_unstable();
                    assert_eq!(dk, ck, "k={k} q={query:?}");
                }
            }
            assert!(
                cached.queries_issued() < direct.queries_issued(),
                "cache must save charges (k={k}): {} vs {}",
                cached.queries_issued(),
                direct.queries_issued()
            );
        }
    }

    #[test]
    fn count_memo_and_learned_counts() {
        use hdsampler_hidden_db::{CountMode, HiddenDb};
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema))
            .result_limit(2)
            .count_mode(CountMode::Exact);
        for vals in [[0u16, 0], [0, 1], [1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let db = b.finish();
        let exec = CachingExecutor::new(&db);

        assert_eq!(exec.count(&q(&[(0, 0)])).unwrap(), 2);
        assert_eq!(exec.count(&q(&[(0, 0)])).unwrap(), 2);
        assert_eq!(exec.queries_issued(), 1, "second probe memoized");

        // A valid classification teaches the cache the exact count.
        exec.classify(&q(&[(0, 1)])).unwrap();
        let before = exec.queries_issued();
        assert_eq!(exec.count(&q(&[(0, 1)])).unwrap(), 1);
        assert_eq!(exec.queries_issued(), before, "count learned from rows");
    }

    #[test]
    fn capacity_bound_evicts() {
        let db = figure1_db(1);
        // Single shard so every charged insert lands in the same capacity
        // bucket and the bound must trip.
        let exec = CachingExecutor::with_shards(&db, 4, 1);
        // 3 attrs × 2 values of depth-1 queries + deeper ones: generate
        // more than 16 distinct queries.
        let mut issued = Vec::new();
        for a in 0..3u16 {
            for v in 0..2u16 {
                issued.push(q(&[(a, v)]));
                for a2 in 0..3u16 {
                    if a2 != a {
                        for v2 in 0..2u16 {
                            issued.push(q(&[(a, v), (a2, v2)]));
                        }
                    }
                }
            }
        }
        for query in &issued {
            let _ = exec.classify(query);
        }
        assert!(
            exec.history_stats().evictions >= 1,
            "capacity must trigger eviction"
        );
        // Still correct after eviction.
        let c = exec.classify(&q(&[(0, 1)])).unwrap();
        assert_eq!(c.class, Classification::Valid);
    }

    #[test]
    fn count_pressure_sheds_layers_not_containment_facts() {
        use hdsampler_hidden_db::{CountMode, HiddenDb};
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .attribute(Attribute::boolean("z"))
            .attribute(Attribute::boolean("w"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema))
            .result_limit(1)
            .count_mode(CountMode::Exact);
        for vals in [[0u16, 0, 0, 0], [0, 1, 0, 0], [0, 1, 1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let db = b.finish();
        // Single shard with a bound the count flood below must bust.
        let exec = CachingExecutor::with_shards(&db, 8, 1);

        // Two charged containment facts: x=1 is empty, y=1 overflows.
        assert_eq!(
            exec.classify(&q(&[(0, 1)])).unwrap().class,
            Classification::Empty
        );
        assert_eq!(
            exec.classify(&q(&[(1, 1)])).unwrap().class,
            Classification::Overflow
        );

        // Count flood over z/w: 8 distinct memoized counts on a capacity-8
        // shard force layered eviction passes.
        for &(a, v) in &[(2u16, 0u16), (2, 1), (3, 0), (3, 1)] {
            exec.count(&q(&[(a, v)])).unwrap();
        }
        for v in 0..2u16 {
            for w in 0..2u16 {
                exec.count(&q(&[(2, v), (3, w)])).unwrap();
            }
        }

        let stats = exec.history_stats();
        assert!(stats.evictions >= 1, "count flood must bust the bound");
        assert_eq!(
            stats.cold_restarts, 0,
            "containment facts never pay for count pressure"
        );

        // Both facts still answer derived queries without a charge.
        let charged = exec.queries_issued();
        assert_eq!(
            exec.classify(&q(&[(0, 1), (2, 1)])).unwrap().class,
            Classification::Empty,
            "refinement of the empty fact"
        );
        assert_eq!(
            exec.classify(&ConjunctiveQuery::empty()).unwrap().class,
            Classification::Overflow,
            "broadening of the overflow fact"
        );
        assert_eq!(
            exec.count(&q(&[(0, 1), (3, 1)])).unwrap(),
            0,
            "evicted count memo rederives from the surviving empty fact"
        );
        assert_eq!(exec.queries_issued(), charged, "all answered from history");
    }

    #[test]
    fn derived_inferences_never_evict_learned_facts() {
        // A shard at capacity skips memoizing derived answers instead of
        // clearing the shard: a flood of inferable queries must not wipe
        // the charged facts the inferences derive from.
        let db = figure1_db(1);
        // Capacity 2 with a single shard: the one charged classification
        // below (memo + learned count) fills the shard exactly.
        let exec = CachingExecutor::with_shards(&db, 2, 1);
        // Charge the empty fact a1=1 ∧ a2=0; every refinement of it is
        // thereafter inferable by the empty-subset rule.
        let parent = exec.classify(&q(&[(0, 1), (1, 0)])).unwrap();
        assert_eq!(parent.class, Classification::Empty);
        let charged = exec.queries_issued();
        // Distinct inferable refinements, repeated — the full shard must
        // neither evict nor re-charge.
        for _pass in 0..2 {
            for v in 0..2u16 {
                let c = exec.classify(&q(&[(0, 1), (1, 0), (2, v)])).unwrap();
                assert_eq!(c.class, Classification::Empty);
            }
        }
        assert_eq!(
            exec.queries_issued(),
            charged,
            "every refinement must come from the empty rule, not a re-charge"
        );
        assert_eq!(
            exec.history_stats().evictions,
            0,
            "inference must not evict"
        );
        assert_eq!(exec.history_stats().empty_rule_hits, 4);
    }

    #[test]
    fn history_hits_report_exact_learn_time_stamps() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        // Wire-learn three facts at distinct site-clock times.
        exec.record_response(
            &q(&[(0, 1), (1, 0)]),
            &Classified {
                class: Classification::Empty,
                rows: None,
            },
        ); // at 0
        let overflow_q = q(&[(0, 0), (1, 1)]);
        let wired = Classified::from_response(db.execute(&overflow_q).unwrap());
        assert_eq!(wired.class, Classification::Overflow);
        exec.record_response_at(&overflow_q, &wired, 70);
        let valid_q = q(&[(0, 0), (1, 0)]);
        let wired = Classified::from_response(db.execute(&valid_q).unwrap());
        assert_eq!(wired.class, Classification::Valid);
        exec.record_response_at(&valid_q, &wired, 135);

        // Rule 2: the empty fact (stamp 0) answers its refinement.
        let hit = exec
            .try_classify_stamped(&q(&[(0, 1), (1, 0), (2, 1)]))
            .unwrap();
        assert_eq!(hit.answer.class, Classification::Empty);
        assert_eq!((hit.learned_at, hit.tier), (0, HitTier::L1));
        // Rule 3: the overflow fact carries its 70ms stamp.
        let hit = exec.try_classify_stamped(&q(&[(1, 1)])).unwrap();
        assert_eq!(hit.answer.class, Classification::Overflow);
        assert_eq!(hit.learned_at, 70);
        // Rule 4: filtering the valid fact's rows carries its 135ms stamp.
        let hit = exec
            .try_classify_stamped(&q(&[(0, 0), (1, 0), (2, 1)]))
            .unwrap();
        assert_eq!(hit.answer.class, Classification::Valid);
        assert_eq!(hit.learned_at, 135);
        // Rule 1: the exact memo replays the original stamp too.
        let hit = exec.try_classify_stamped(&valid_q).unwrap();
        assert_eq!(hit.learned_at, 135);
        // The derived rule-4 answer was memoized with its witness stamp.
        let hit = exec
            .try_classify_stamped(&q(&[(0, 0), (1, 0), (2, 1)]))
            .unwrap();
        assert_eq!((hit.learned_at, hit.tier), (135, HitTier::L1));
    }

    fn l2_tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hds-hist-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn figure1_log(root: &std::path::Path) -> Arc<crate::l2::L2Log> {
        let db = figure1_db(1);
        let fp = crate::l2::SiteFingerprint::derive(db.schema(), 1, db.supports_count(), None);
        Arc::new(crate::l2::L2Log::open(root, fp).unwrap())
    }

    #[test]
    fn l2_warm_start_answers_without_wire_and_promotes() {
        let root = l2_tmpdir("warm");
        // Cold run: wire-learn facts, written behind to the log.
        {
            let db = figure1_db(1);
            let exec = CachingExecutor::new(&db).with_l2(figure1_log(&root));
            exec.classify(&q(&[(0, 1), (1, 0)])).unwrap(); // empty
            exec.classify(&q(&[(0, 0), (1, 1)])).unwrap(); // overflow
            exec.classify(&q(&[(0, 0), (1, 0)])).unwrap(); // valid
            let stats = exec.history_stats();
            assert_eq!(stats.l2_puts, 3, "each wire fact written behind");
            assert_eq!(stats.l2_loads, 0, "nothing to load on the first run");
        }
        // Warm run: a fresh executor over the same log answers the same
        // queries — and their inferable relatives — without the wire.
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db).with_l2(figure1_log(&root));
        assert_eq!(exec.history_stats().l2_loads, 3);
        let hit = exec.try_classify_stamped(&q(&[(0, 1), (1, 0)])).unwrap();
        assert_eq!(hit.answer.class, Classification::Empty);
        assert_eq!((hit.learned_at, hit.tier), (0, HitTier::L2));
        // The promoted fact answers its refinement from L1 — at the same
        // pre-run floor.
        let hit = exec
            .try_classify_stamped(&q(&[(0, 1), (1, 0), (2, 0)]))
            .unwrap();
        assert_eq!(hit.answer.class, Classification::Empty);
        assert_eq!((hit.learned_at, hit.tier), (0, HitTier::L1));
        // Rule-4 filtering works from the persisted rows as well.
        let hit = exec
            .try_classify_stamped(&q(&[(0, 0), (1, 0), (2, 1)]))
            .unwrap();
        assert_eq!(hit.answer.class, Classification::Valid);
        assert_eq!(hit.tier, HitTier::L2);
        // And a broadening of the persisted overflow fact infers from L2.
        let hit = exec.try_classify_stamped(&q(&[(1, 1)])).unwrap();
        assert_eq!(hit.answer.class, Classification::Overflow);
        assert_eq!(hit.tier, HitTier::L2);
        assert_eq!(exec.queries_issued(), 0, "warm run never touched the wire");
        let stats = exec.history_stats();
        assert_eq!(stats.l2_hits, 3);
        assert_eq!(stats.l2_puts, 0, "promotions must not re-append to the log");
        // The promoted facts now answer from L1.
        let hit = exec.try_classify_stamped(&q(&[(0, 1), (1, 0)])).unwrap();
        assert_eq!(hit.tier, HitTier::L1);
        assert_eq!(hit.learned_at, 0, "promoted at the pre-run floor");
        // And the log still holds exactly the cold run's three facts.
        assert_eq!(figure1_log(&root).load().unwrap().len(), 3);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn l2_serves_persisted_counts() {
        use hdsampler_hidden_db::{CountMode, HiddenDb};
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .finish()
            .unwrap()
            .into_shared();
        let mk_db = || {
            let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema))
                .result_limit(2)
                .count_mode(CountMode::Exact);
            for vals in [[0u16, 0], [0, 1], [1, 0]] {
                b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                    .unwrap();
            }
            b.finish()
        };
        let root = l2_tmpdir("counts");
        let mk_log = || {
            let db = mk_db();
            let fp = crate::l2::SiteFingerprint::derive(db.schema(), 2, true, None);
            Arc::new(crate::l2::L2Log::open(&root, fp).unwrap())
        };
        {
            let db = mk_db();
            let exec = CachingExecutor::new(&db).with_l2(mk_log());
            assert_eq!(exec.count(&q(&[(0, 0)])).unwrap(), 2);
            assert_eq!(exec.history_stats().l2_puts, 1);
        }
        let db = mk_db();
        let exec = CachingExecutor::new(&db).with_l2(mk_log());
        assert_eq!(exec.count(&q(&[(0, 0)])).unwrap(), 2);
        assert_eq!(exec.queries_issued(), 0, "count served from L2");
        assert_eq!(exec.history_stats().l2_hits, 1);
        // Promoted: the repeat is an L1 count-memo hit.
        assert_eq!(exec.count(&q(&[(0, 0)])).unwrap(), 2);
        assert_eq!(exec.history_stats().count_memo_hits, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn l2_miss_counters_only_tick_with_a_tier_attached() {
        let db = figure1_db(1);
        let exec = CachingExecutor::new(&db);
        exec.classify(&q(&[(0, 0)])).unwrap();
        let stats = exec.history_stats();
        assert_eq!((stats.l2_hits, stats.l2_misses, stats.l2_puts), (0, 0, 0));

        let root = l2_tmpdir("miss");
        let exec = CachingExecutor::new(&db).with_l2(figure1_log(&root));
        exec.classify(&q(&[(0, 0)])).unwrap();
        let stats = exec.history_stats();
        assert_eq!(stats.l2_misses, 1, "cold L2 missed before the wire fetch");
        assert_eq!(stats.misses, 1);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn valid_root_powers_filter_rule() {
        // n <= k: the empty query is Valid with the complete table; every
        // refinement must then be answered locally from the root's rows
        // (the stored empty ancestor used to be invisible to rule 4).
        let db = figure1_db(10);
        let exec = CachingExecutor::new(&db);
        let root = exec.classify(&ConjunctiveQuery::empty()).unwrap();
        assert_eq!(root.class, Classification::Valid);
        assert_eq!(root.result_size(), 4);

        let before = exec.queries_issued();
        let child = exec.classify(&q(&[(0, 0), (1, 1)])).unwrap();
        assert_eq!(child.class, Classification::Valid);
        assert_eq!(child.result_size(), 2, "t2, t3 filtered from the root page");
        let nothing = exec.classify(&q(&[(0, 1), (1, 0)])).unwrap();
        assert_eq!(nothing.class, Classification::Empty);
        assert_eq!(
            exec.queries_issued(),
            before,
            "descendants of a valid root are derived free"
        );
        assert_eq!(exec.history_stats().filter_rule_hits, 2);
    }
}
