//! Samples, sample sets, sampler errors, and the [`Sampler`] trait.

use hdsampler_model::{InterfaceError, Row};

use crate::stats::SamplerStats;

/// One produced sample with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The sampled row, exactly as scraped from a result page.
    pub row: Row,
    /// Importance weight. `1.0` for exact samplers; the count-weighted
    /// sampler under *noisy* counts attaches self-normalizing weights so
    /// estimators can partially undo the noise-induced bias.
    pub weight: f64,
    /// How the sample was obtained.
    pub meta: SampleMeta,
}

/// Provenance of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleMeta {
    /// Depth (number of drilled predicates) of the node that yielded it.
    pub depth: usize,
    /// Result size `j` of that node.
    pub result_size: usize,
    /// Acceptance probability it survived (1.0 where not applicable).
    pub acceptance: f64,
    /// Walks consumed to produce it (restarts + rejections included).
    pub walks: u64,
}

/// A growing collection of samples (the Sample Processor's output store,
/// §3.3).
#[derive(Debug, Clone, Default)]
pub struct SampleSet {
    samples: Vec<Sample>,
}

impl SampleSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    pub fn push(&mut self, s: Sample) {
        self.samples.push(s);
    }

    /// All samples in acceptance order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Just the rows.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.samples.iter().map(|s| &s.row)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Listing keys of all samples (for de-duplication / size estimation).
    pub fn keys(&self) -> Vec<u64> {
        self.samples.iter().map(|s| s.row.key).collect()
    }

    /// Count of *distinct* sampled tuples (by listing key).
    pub fn distinct(&self) -> usize {
        let mut keys = self.keys();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    }

    /// Total weight (= `len()` for exact samplers).
    pub fn total_weight(&self) -> f64 {
        self.samples.iter().map(|s| s.weight).sum()
    }
}

impl Extend<Sample> for SampleSet {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<Sample> for SampleSet {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        SampleSet {
            samples: iter.into_iter().collect(),
        }
    }
}

/// Why a sampler could not produce (more) samples.
#[derive(Debug, Clone, PartialEq)]
pub enum SamplerError {
    /// The site's query budget ran out (partial results remain usable).
    BudgetExhausted {
        /// Queries charged before exhaustion.
        issued: u64,
    },
    /// The configured scope (pinned bindings) selects no tuples.
    EmptyScope,
    /// `max_walks_per_sample` exceeded without an accepted candidate.
    WalkLimit {
        /// Walks attempted.
        walks: u64,
    },
    /// The sampler requires count reporting but the site has none.
    CountUnsupported,
    /// Underlying interface failure.
    Interface(InterfaceError),
    /// The sampler was configured inconsistently (message explains).
    Config(String),
}

impl std::fmt::Display for SamplerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplerError::BudgetExhausted { issued } => {
                write!(f, "site budget exhausted after {issued} queries")
            }
            SamplerError::EmptyScope => write!(f, "the configured scope selects no tuples"),
            SamplerError::WalkLimit { walks } => {
                write!(f, "no sample accepted within {walks} walks")
            }
            SamplerError::CountUnsupported => {
                write!(
                    f,
                    "count-weighted sampling needs a count-reporting interface"
                )
            }
            SamplerError::Interface(e) => write!(f, "interface error: {e}"),
            SamplerError::Config(msg) => write!(f, "invalid sampler configuration: {msg}"),
        }
    }
}

impl std::error::Error for SamplerError {}

impl From<InterfaceError> for SamplerError {
    fn from(e: InterfaceError) -> Self {
        match e {
            InterfaceError::BudgetExhausted { issued } => SamplerError::BudgetExhausted { issued },
            other => SamplerError::Interface(other),
        }
    }
}

/// A source of (near-)uniform random samples from a hidden database.
pub trait Sampler {
    /// Produce the next sample, driving as many interface queries as
    /// needed.
    fn next_sample(&mut self) -> Result<Sample, SamplerError>;

    /// Cumulative sampling statistics.
    fn stats(&self) -> SamplerStats;

    /// Short algorithm name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(key: u64) -> Sample {
        Sample {
            row: Row::new(key, vec![0], vec![]),
            weight: 1.0,
            meta: SampleMeta::default(),
        }
    }

    #[test]
    fn sample_set_accumulates() {
        let mut set = SampleSet::new();
        assert!(set.is_empty());
        set.push(sample(5));
        set.push(sample(5));
        set.push(sample(9));
        assert_eq!(set.len(), 3);
        assert_eq!(set.distinct(), 2);
        assert_eq!(set.total_weight(), 3.0);
        assert_eq!(set.keys(), vec![5, 5, 9]);
    }

    #[test]
    fn sample_set_from_iterator() {
        let set: SampleSet = (0..4).map(sample).collect();
        assert_eq!(set.len(), 4);
        assert_eq!(set.rows().count(), 4);
    }

    #[test]
    fn budget_error_converts() {
        let e: SamplerError = InterfaceError::BudgetExhausted { issued: 10 }.into();
        assert_eq!(e, SamplerError::BudgetExhausted { issued: 10 });
        let e: SamplerError = InterfaceError::Transport("boom".into()).into();
        assert!(matches!(e, SamplerError::Interface(_)));
    }

    #[test]
    fn error_messages_readable() {
        assert!(SamplerError::EmptyScope.to_string().contains("scope"));
        assert!(SamplerError::WalkLimit { walks: 3 }
            .to_string()
            .contains('3'));
    }
}
