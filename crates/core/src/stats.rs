//! Sampling statistics: the efficiency side of the efficiency ↔ skew
//! trade-off.

/// Cumulative counters maintained by every sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SamplerStats {
    /// Drill-down walks started (brute force: probe queries issued).
    pub walks: u64,
    /// Walks that hit an empty node and restarted.
    pub dead_ends: u64,
    /// Walks that bottomed out on an overflowing fully-specified query
    /// (indistinguishable tuple mass > k — unsampleable by drill-down).
    pub leaf_overflows: u64,
    /// Candidates handed to the Sample Processor.
    pub candidates: u64,
    /// Candidates accepted (= samples produced).
    pub accepted: u64,
    /// Candidates rejected by acceptance–rejection.
    pub rejected: u64,
    /// Logical query requests made by the sampler (cache hits included).
    pub requests: u64,
    /// Queries actually charged at the interface.
    pub queries_issued: u64,
    /// Transient-failure retries (throttles, 5xx, dropped connections).
    /// Charged separately from `queries_issued`: a retried query is still
    /// one logical query.
    pub retries: u64,
    /// Total backoff waited before those retries, in wire milliseconds
    /// (virtual on simulated wires, real on live ones).
    pub backoff_ms: u64,
}

impl SamplerStats {
    /// Interface queries charged per accepted sample — the paper's core
    /// efficiency metric.
    pub fn queries_per_sample(&self) -> f64 {
        if self.accepted == 0 {
            f64::NAN
        } else {
            self.queries_issued as f64 / self.accepted as f64
        }
    }

    /// Walks per accepted sample.
    pub fn walks_per_sample(&self) -> f64 {
        if self.accepted == 0 {
            f64::NAN
        } else {
            self.walks as f64 / self.accepted as f64
        }
    }

    /// Fraction of candidates that survived acceptance–rejection.
    pub fn acceptance_rate(&self) -> f64 {
        if self.candidates == 0 {
            f64::NAN
        } else {
            self.accepted as f64 / self.candidates as f64
        }
    }

    /// Queries the history cache absorbed (requests that cost nothing).
    pub fn queries_saved(&self) -> u64 {
        self.requests.saturating_sub(self.queries_issued)
    }

    /// Fraction of requests served without charging the site.
    pub fn savings_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.queries_saved() as f64 / self.requests as f64
        }
    }

    /// Fold another worker's counters into this one (parallel sessions).
    ///
    /// Sampler-local counters (walks, candidates, accepted, …) add up.
    /// The executor-view counters (`requests`, `queries_issued`) take the
    /// **max**: workers sharing one executor each report the same
    /// cumulative figures, so summing would multi-count. For workers on a
    /// shared executor the merged figure is exact; for independent
    /// executors it is a lower bound.
    pub fn merge_worker(&mut self, other: &SamplerStats) {
        self.walks += other.walks;
        self.dead_ends += other.dead_ends;
        self.leaf_overflows += other.leaf_overflows;
        self.candidates += other.candidates;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.requests = self.requests.max(other.requests);
        self.queries_issued = self.queries_issued.max(other.queries_issued);
        self.retries = self.retries.max(other.retries);
        self.backoff_ms = self.backoff_ms.max(other.backoff_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = SamplerStats {
            walks: 100,
            dead_ends: 40,
            leaf_overflows: 0,
            candidates: 60,
            accepted: 20,
            rejected: 40,
            requests: 500,
            queries_issued: 300,
            retries: 0,
            backoff_ms: 0,
        };
        assert_eq!(s.queries_per_sample(), 15.0);
        assert_eq!(s.walks_per_sample(), 5.0);
        assert!((s.acceptance_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.queries_saved(), 200);
        assert!((s.savings_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_local_and_maxes_shared_counters() {
        let mut a = SamplerStats {
            walks: 10,
            dead_ends: 2,
            leaf_overflows: 1,
            candidates: 7,
            accepted: 5,
            rejected: 2,
            requests: 40,
            queries_issued: 30,
            retries: 4,
            backoff_ms: 120,
        };
        let b = SamplerStats {
            walks: 4,
            dead_ends: 1,
            leaf_overflows: 0,
            candidates: 3,
            accepted: 2,
            rejected: 1,
            requests: 42,
            queries_issued: 31,
            retries: 3,
            backoff_ms: 200,
        };
        a.merge_worker(&b);
        assert_eq!(a.walks, 14);
        assert_eq!(a.accepted, 7);
        assert_eq!(a.rejected, 3);
        assert_eq!(a.requests, 42, "shared executor view: max, not sum");
        assert_eq!(a.queries_issued, 31);
        assert_eq!(a.retries, 4, "interface view: max, not sum");
        assert_eq!(a.backoff_ms, 200);
    }

    #[test]
    fn zero_sample_ratios_are_nan_not_panic() {
        let s = SamplerStats::default();
        assert!(s.queries_per_sample().is_nan());
        assert!(s.walks_per_sample().is_nan());
        assert!(s.acceptance_rate().is_nan());
        assert_eq!(s.savings_rate(), 0.0);
    }
}
