//! Streaming sample observation: the [`SampleSink`] trait.
//!
//! The paper's system is explicitly incremental — "the Sample Generator,
//! Sample Processor and Output module generate samples and update the
//! final sample set and histograms till the desired number of samples are
//! obtained" (§3.4). A [`SampleSink`] is the Output Module's intake: every
//! execution path (a [`SamplingSession`](crate::session::SamplingSession)
//! run, its parallel variant, and the webform fleet drivers) emits each
//! accepted sample into the attached sinks *as it is accepted*, so
//! estimators can maintain live state mid-run instead of waiting for the
//! session to end.
//!
//! ## Contract
//!
//! * [`SampleSink::observe`] receives every accepted sample exactly once,
//!   in acceptance order, wrapped in a [`SampleEvent`] that carries the
//!   sample itself (row + importance weight), its site/walker provenance
//!   and the run's running counters.
//! * [`SampleSink::fork`] produces a sink for a parallel worker (or a
//!   concurrently driven site). Accumulating sinks return a fresh empty
//!   sink of the same type; sinks wrapping shared state (a live display, a
//!   channel) may return another handle to the same state.
//! * [`SampleSink::merge`] folds a forked sink back into its parent —
//!   mirroring [`SamplerStats::merge_worker`](crate::stats::SamplerStats::merge_worker)
//!   for counters. For accumulating sinks the merged state must equal the
//!   state produced by observing both streams into one sink; sharing
//!   sinks make it a no-op. Merging a sink of a different concrete type
//!   panics.
//!
//! Order caveat: float accumulation is not associative, so a fork/merge
//! regrouping may differ from single-stream observation in the last ulp.
//! Sequential observation is bit-exact — the batch constructors in
//! `hdsampler-estimator` are thin wrappers over it, which is what makes
//! "online snapshot ≡ post-hoc batch estimate" hold byte-for-byte.

use std::any::Any;

use crate::sample::Sample;

/// One accepted sample, as delivered to every attached [`SampleSink`].
#[derive(Debug, Clone, Copy)]
pub struct SampleEvent<'a> {
    /// The accepted sample: scraped row, importance weight, provenance
    /// metadata.
    pub sample: &'a Sample,
    /// Index of the site that produced it (0 for single-site runs).
    pub site: usize,
    /// Index of the walker that produced it within its site.
    pub walker: usize,
    /// Samples collected by the emitting run *including this one* (for a
    /// fleet driver: collected at this site).
    pub collected: usize,
    /// The run's sample target (per site for fleet drivers).
    pub target: usize,
    /// Queries charged at the interface so far (running
    /// [`SamplerStats::queries_issued`](crate::stats::SamplerStats)
    /// snapshot — the live cost figure a progress display wants).
    pub queries: u64,
    /// Logical query requests so far, cache hits included (running
    /// `SamplerStats::requests`); `requests - queries` is the history
    /// cache's savings.
    pub requests: u64,
}

/// A streaming observer of accepted samples.
///
/// Implementors are owned (`'static`) and `Send` so drivers can move
/// forked sinks across worker threads.
pub trait SampleSink: Send + 'static {
    /// Observe one accepted sample.
    fn observe(&mut self, event: &SampleEvent<'_>);

    /// A sink for a parallel worker; see the module docs for semantics.
    fn fork(&self) -> Box<dyn SampleSink>;

    /// Fold a [`fork`](SampleSink::fork)ed sink back in.
    ///
    /// # Panics
    /// Panics if `other` is not the same concrete type as `self`.
    fn merge(&mut self, other: Box<dyn SampleSink>);

    /// The sink as [`Any`], for snapshot retrieval through a trait object.
    fn as_any(&self) -> &dyn Any;

    /// Consume the boxed sink as [`Any`] (the `merge` implementation's
    /// down-casting hook).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Deliver one event to every sink in a set (helper shared by the
/// execution paths).
pub fn observe_all(sinks: &mut [&mut dyn SampleSink], event: &SampleEvent<'_>) {
    for sink in sinks.iter_mut() {
        sink.observe(event);
    }
}

/// Down-cast a merged-in sink to the expected concrete type, with a
/// uniform panic message (helper for `merge` implementations).
pub fn merged<T: SampleSink>(other: Box<dyn SampleSink>) -> Box<T> {
    other
        .into_any()
        .downcast::<T>()
        .expect("SampleSink::merge: forked sink has a different concrete type")
}

/// A sink that discards everything (the default when nothing is attached).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl SampleSink for NullSink {
    fn observe(&mut self, _: &SampleEvent<'_>) {}

    fn fork(&self) -> Box<dyn SampleSink> {
        Box::new(NullSink)
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        let _ = merged::<NullSink>(other);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A sink that collects the observed stream into a [`SampleSet`], in
/// observation order — the streaming face of the Sample Processor's
/// output store.
#[derive(Debug, Clone, Default)]
pub struct SampleSetSink {
    set: crate::sample::SampleSet,
}

impl SampleSetSink {
    /// Empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The samples observed so far, in observation order.
    pub fn set(&self) -> &crate::sample::SampleSet {
        &self.set
    }

    /// Consume the collector.
    pub fn into_set(self) -> crate::sample::SampleSet {
        self.set
    }
}

impl SampleSink for SampleSetSink {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.set.push(event.sample.clone());
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        Box::new(SampleSetSink::new())
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        let other = merged::<SampleSetSink>(other);
        self.set.extend(other.set.samples().iter().cloned());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::SampleMeta;
    use hdsampler_model::Row;

    fn sample(key: u64) -> Sample {
        Sample {
            row: Row::new(key, vec![0], vec![]),
            weight: 1.0,
            meta: SampleMeta::default(),
        }
    }

    fn event<'a>(s: &'a Sample, collected: usize) -> SampleEvent<'a> {
        SampleEvent {
            sample: s,
            site: 0,
            walker: 0,
            collected,
            target: 10,
            queries: 0,
            requests: 0,
        }
    }

    #[test]
    fn sample_set_sink_collects_in_order() {
        let mut sink = SampleSetSink::new();
        let (a, b) = (sample(1), sample(2));
        sink.observe(&event(&a, 1));
        sink.observe(&event(&b, 2));
        assert_eq!(sink.set().keys(), vec![1, 2]);
    }

    #[test]
    fn fork_merge_concatenates_worker_streams() {
        let mut parent = SampleSetSink::new();
        let a = sample(1);
        parent.observe(&event(&a, 1));
        let mut w0 = parent.fork();
        let mut w1 = parent.fork();
        let (b, c) = (sample(2), sample(3));
        w0.observe(&event(&b, 2));
        w1.observe(&event(&c, 3));
        parent.merge(w0);
        parent.merge(w1);
        assert_eq!(parent.set().keys(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "different concrete type")]
    fn merging_a_mismatched_sink_panics() {
        let mut sink = SampleSetSink::new();
        sink.merge(Box::new(NullSink));
    }

    #[test]
    fn observe_all_fans_out() {
        let mut a = SampleSetSink::new();
        let mut b = SampleSetSink::new();
        let s = sample(9);
        {
            let mut sinks: Vec<&mut dyn SampleSink> = vec![&mut a, &mut b];
            observe_all(&mut sinks, &event(&s, 1));
        }
        assert_eq!(a.set().len(), 1);
        assert_eq!(b.set().len(), 1);
    }
}
