//! Disk-backed L2 history: an append-only JSONL fact log per site.
//!
//! The in-memory history cache ([`crate::history::CachingExecutor`]) dies
//! with the process; every fleet run re-learns the same hidden database
//! from scratch. This module persists the *learned* facts — counts,
//! containment classifications, and complete valid row sets, each stamped
//! with its learn time — so a later run against the same site warm-starts
//! from disk instead of the wire. Memo entries are deliberately **not**
//! persisted: they are rederivable from the containment facts.
//!
//! Layout on disk: `<root>/<fingerprint>/seg-NNNNN.jsonl`, one JSON record
//! per line. Appends go to the newest segment and rotate at
//! [`L2Config::rotate_records`]; [`L2Log::compact`] rewrites everything
//! into a single deduplicated segment (keeping the *earliest* stamp per
//! fact, since a fact's learn time never moves later). Torn final records,
//! garbage prefixes, and any other unparseable line are skipped and
//! counted, never a panic — crash mid-append must not poison the log.
//!
//! Site identity is a [`SiteFingerprint`]: a versioned FNV digest of the
//! schema, the display limit `k`, count support, and (when the deriving
//! side can see the data) a dataset digest. The version prefix exists so
//! future churn/invalidation work can retire old logs wholesale.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use hdsampler_model::{ConjunctiveQuery, Row, Schema};

/// Version prefix of every fingerprint this build derives. Bump it to
/// invalidate all existing logs at once (the planned churn work will).
pub const FINGERPRINT_VERSION: &str = "hds1";

const SEGMENT_PREFIX: &str = "seg-";
const SEGMENT_SUFFIX: &str = ".jsonl";

/// FNV-1a over a byte stream (same constants as the history cache's
/// sharding hash; stability across builds is what matters here, since
/// fingerprints live on disk).
fn fnv1a(acc: u64, bytes: &[u8]) -> u64 {
    let mut h = acc;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Versioned identity of a site: `hds1-<16 hex digits>`.
///
/// Two runs share an L2 log exactly when their fingerprints agree. The
/// digest covers the schema (attribute names, domain labels, measure
/// names), the advertised `k`, count support, and — when derivable — a
/// digest of the dataset itself. A scraper that cannot see the data (a
/// remote site not advertising one) derives the same fingerprint for the
/// same advertised form, which is the best identity the wire offers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SiteFingerprint(String);

impl SiteFingerprint {
    /// Derive a fingerprint from everything the connecting side knows.
    pub fn derive(
        schema: &Schema,
        k: usize,
        supports_count: bool,
        dataset_digest: Option<u64>,
    ) -> Self {
        let mut h = FNV_OFFSET;
        for attr in schema.attributes() {
            h = fnv1a(h, attr.name().as_bytes());
            h = fnv1a(h, &[0xFF]);
            for v in attr.domain() {
                h = fnv1a(h, attr.label(v).as_bytes());
                h = fnv1a(h, &[0xFE]);
            }
        }
        for m in schema.measures() {
            h = fnv1a(h, m.name().as_bytes());
            h = fnv1a(h, &[0xFD]);
        }
        h = fnv1a(h, &(k as u64).to_le_bytes());
        h = fnv1a(h, &[u8::from(supports_count)]);
        if let Some(d) = dataset_digest {
            h = fnv1a(h, &d.to_le_bytes());
        }
        SiteFingerprint(format!("{FINGERPRINT_VERSION}-{h:016x}"))
    }

    /// Parse a fingerprint string (e.g. scraped off a landing page),
    /// accepting only the current version and shape — anything else is a
    /// foreign or stale identity and must not select a log directory.
    pub fn parse(s: &str) -> Option<Self> {
        let hex = s.strip_prefix(FINGERPRINT_VERSION)?.strip_prefix('-')?;
        if hex.len() == 16
            && hex
                .bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase())
        {
            Some(SiteFingerprint(s.to_owned()))
        } else {
            None
        }
    }

    /// The fingerprint text (also the log's directory name).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for SiteFingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// One persisted fact. `kind` selects which optional payload applies:
/// `"count"` carries `count`, `"valid"` carries `rows` (the complete
/// result set — that completeness is the fact), `"empty"`/`"overflow"`
/// carry only the query. `learned_at` is the site-clock time (virtual ms)
/// the fact was learned at in the run that wrote it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactRecord {
    /// `"count" | "empty" | "overflow" | "valid"`.
    pub kind: String,
    /// The query the fact is about.
    pub query: ConjunctiveQuery,
    /// Exact result count (kind `"count"`).
    pub count: Option<u64>,
    /// Complete result rows (kind `"valid"`).
    pub rows: Option<Vec<Row>>,
    /// Learn time on the writing run's site clock (ms).
    pub learned_at: u64,
}

impl FactRecord {
    /// A learned exact count.
    pub fn count(query: ConjunctiveQuery, count: u64, learned_at: u64) -> Self {
        FactRecord {
            kind: "count".into(),
            query,
            count: Some(count),
            rows: None,
            learned_at,
        }
    }

    /// A learned empty classification.
    pub fn empty(query: ConjunctiveQuery, learned_at: u64) -> Self {
        FactRecord {
            kind: "empty".into(),
            query,
            count: None,
            rows: None,
            learned_at,
        }
    }

    /// A learned overflow classification.
    pub fn overflow(query: ConjunctiveQuery, learned_at: u64) -> Self {
        FactRecord {
            kind: "overflow".into(),
            query,
            count: None,
            rows: None,
            learned_at,
        }
    }

    /// A learned valid classification with its complete rows.
    pub fn valid(query: ConjunctiveQuery, rows: Vec<Row>, learned_at: u64) -> Self {
        FactRecord {
            kind: "valid".into(),
            query,
            count: None,
            rows: Some(rows),
            learned_at,
        }
    }

    /// Structural sanity beyond JSON well-formedness: a record whose kind
    /// and payload disagree (a hand-edited or half-compacted line) is as
    /// unusable as a torn one.
    fn is_coherent(&self) -> bool {
        match self.kind.as_str() {
            "count" => self.count.is_some(),
            "valid" => self.rows.is_some(),
            "empty" | "overflow" => true,
            _ => false,
        }
    }
}

/// Tuning knobs for the log.
#[derive(Debug, Clone, Copy)]
pub struct L2Config {
    /// Records per segment before appends rotate to a fresh one.
    pub rotate_records: usize,
    /// Segment count at or above which [`L2Log::open`] compacts before
    /// serving.
    pub compact_at_segments: usize,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            rotate_records: 8_192,
            compact_at_segments: 8,
        }
    }
}

/// What a scan of the log directory found.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct L2DirStats {
    /// Segment files present.
    pub segments: usize,
    /// Well-formed records across all segments.
    pub records: u64,
    /// Bytes on disk across all segments.
    pub bytes: u64,
    /// Torn/garbage lines skipped during the scan.
    pub skipped: u64,
}

/// Outcome of one [`L2Log::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Records (and segments) before the pass.
    pub records_before: u64,
    /// Segments before the pass.
    pub segments_before: usize,
    /// Records surviving dedup.
    pub records_after: u64,
    /// Torn/garbage lines dropped by the pass.
    pub skipped: u64,
}

#[derive(Debug)]
struct WriterState {
    /// Index of the segment appends currently go to.
    seg_ix: u32,
    /// Records already in that segment.
    records_in_seg: usize,
    /// Open append handle (lazy: `cache stats` never writes).
    file: Option<File>,
}

/// The append-only fact log for one `(root dir, fingerprint)` pair.
///
/// Safe to share behind an `Arc`: appends serialize on an internal lock
/// and flush per record, so a crash loses at most the record being
/// written — which the tolerant loader then skips.
#[derive(Debug)]
pub struct L2Log {
    dir: PathBuf,
    fingerprint: SiteFingerprint,
    cfg: L2Config,
    writer: Mutex<WriterState>,
    skipped: AtomicU64,
}

impl L2Log {
    /// Open (creating if absent) the log for `fingerprint` under `root`,
    /// compacting first when the segment count reached
    /// [`L2Config::compact_at_segments`].
    pub fn open(root: &Path, fingerprint: SiteFingerprint) -> std::io::Result<L2Log> {
        Self::open_with(root, fingerprint, L2Config::default())
    }

    /// [`L2Log::open`] with explicit tuning.
    pub fn open_with(
        root: &Path,
        fingerprint: SiteFingerprint,
        cfg: L2Config,
    ) -> std::io::Result<L2Log> {
        let dir = root.join(fingerprint.as_str());
        fs::create_dir_all(&dir)?;
        let log = L2Log {
            dir,
            fingerprint,
            cfg,
            writer: Mutex::new(WriterState {
                seg_ix: 0,
                records_in_seg: 0,
                file: None,
            }),
            skipped: AtomicU64::new(0),
        };
        if log.segment_paths()?.len() >= cfg.compact_at_segments.max(2) {
            log.compact()?;
        } else {
            log.seek_append_position()?;
        }
        Ok(log)
    }

    /// The identity this log stores facts for.
    pub fn fingerprint(&self) -> &SiteFingerprint {
        &self.fingerprint
    }

    /// The log's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Torn/garbage lines skipped by loads through this handle.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    fn segment_path(&self, ix: u32) -> PathBuf {
        self.dir
            .join(format!("{SEGMENT_PREFIX}{ix:05}{SEGMENT_SUFFIX}"))
    }

    /// Existing segment files in replay (= chronological) order.
    fn segment_paths(&self) -> std::io::Result<Vec<PathBuf>> {
        let mut segs: Vec<PathBuf> = fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(SEGMENT_PREFIX) && n.ends_with(SEGMENT_SUFFIX))
            })
            .collect();
        segs.sort();
        Ok(segs)
    }

    /// Point the writer at the tail of the newest segment.
    fn seek_append_position(&self) -> std::io::Result<()> {
        let segs = self.segment_paths()?;
        let mut w = self.writer.lock().expect("l2 writer lock");
        w.file = None;
        match segs.last() {
            None => {
                w.seg_ix = 0;
                w.records_in_seg = 0;
            }
            Some(last) => {
                let name = last
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                w.seg_ix = name
                    .strip_prefix(SEGMENT_PREFIX)
                    .and_then(|n| n.strip_suffix(SEGMENT_SUFFIX))
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(0);
                // Count *lines*, not parseable records: a torn tail still
                // occupies its line, and appending after it on a fresh
                // line keeps the torn one isolated.
                let bytes = fs::read(last)?;
                w.records_in_seg = bytes
                    .split(|&b| b == b'\n')
                    .filter(|l| !l.is_empty())
                    .count();
                if bytes.last().is_some_and(|&b| b != b'\n') {
                    // A torn tail has no terminator — close its line now so
                    // the next append cannot concatenate onto the damage.
                    let mut f = OpenOptions::new().append(true).open(last)?;
                    f.write_all(b"\n")?;
                    f.flush()?;
                }
            }
        }
        Ok(())
    }

    /// Replay every record in learn order, skipping (and counting)
    /// unparseable or incoherent lines.
    pub fn load(&self) -> std::io::Result<Vec<FactRecord>> {
        let mut out = Vec::new();
        let mut skipped = 0u64;
        for seg in self.segment_paths()? {
            let reader = BufReader::new(File::open(&seg)?);
            for line in reader.lines() {
                // An unreadable line (bad UTF-8, torn tail) is skipped
                // like an unparseable one; an I/O error mid-file would
                // also surface here and is treated the same way.
                let Ok(line) = line else {
                    skipped += 1;
                    continue;
                };
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<FactRecord>(&line) {
                    Ok(rec) if rec.is_coherent() => out.push(rec),
                    _ => skipped += 1,
                }
            }
        }
        self.skipped.fetch_add(skipped, Ordering::Relaxed);
        Ok(out)
    }

    /// Append one fact, flushing so a crash after return cannot lose it.
    pub fn append(&self, rec: &FactRecord) -> std::io::Result<()> {
        let line = serde_json::to_string(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut w = self.writer.lock().expect("l2 writer lock");
        if w.records_in_seg >= self.cfg.rotate_records && w.file.is_some() {
            w.seg_ix += 1;
            w.records_in_seg = 0;
            w.file = None;
        }
        if w.file.is_none() {
            let path = self.segment_path(w.seg_ix);
            w.file = Some(OpenOptions::new().create(true).append(true).open(path)?);
        }
        let file = w.file.as_mut().expect("append handle just opened");
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        w.records_in_seg += 1;
        Ok(())
    }

    /// Rewrite the whole log as one deduplicated segment. Duplicate facts
    /// (same kind + query) keep their earliest stamp; torn lines vanish.
    pub fn compact(&self) -> std::io::Result<CompactReport> {
        let segs = self.segment_paths()?;
        let before_skipped = self.skipped.load(Ordering::Relaxed);
        let records = self.load()?;
        let pass_skipped = self.skipped.load(Ordering::Relaxed) - before_skipped;
        let records_before = records.len() as u64;
        let mut seen: HashMap<(String, ConjunctiveQuery), usize> = HashMap::new();
        let mut kept: Vec<FactRecord> = Vec::with_capacity(records.len());
        for rec in records {
            match seen.entry((rec.kind.clone(), rec.query.clone())) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(kept.len());
                    kept.push(rec);
                }
                std::collections::hash_map::Entry::Occupied(o) => {
                    let prev = &mut kept[*o.get()];
                    if rec.learned_at < prev.learned_at {
                        *prev = rec;
                    }
                }
            }
        }

        let mut w = self.writer.lock().expect("l2 writer lock");
        let tmp = self.dir.join("compact.tmp");
        {
            let mut f = File::create(&tmp)?;
            for rec in &kept {
                let line = serde_json::to_string(rec).map_err(|e| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
                })?;
                f.write_all(line.as_bytes())?;
                f.write_all(b"\n")?;
            }
            f.sync_all()?;
        }
        for seg in &segs {
            fs::remove_file(seg)?;
        }
        fs::rename(&tmp, self.segment_path(0))?;
        w.seg_ix = 0;
        w.records_in_seg = kept.len();
        w.file = None;
        Ok(CompactReport {
            records_before,
            segments_before: segs.len(),
            records_after: kept.len() as u64,
            skipped: pass_skipped,
        })
    }

    /// Delete every segment (the directory itself stays).
    pub fn clear(&self) -> std::io::Result<()> {
        let mut w = self.writer.lock().expect("l2 writer lock");
        for seg in self.segment_paths()? {
            fs::remove_file(seg)?;
        }
        w.seg_ix = 0;
        w.records_in_seg = 0;
        w.file = None;
        Ok(())
    }

    /// Scan the directory without loading rows into memory-resident form.
    pub fn stats(&self) -> std::io::Result<L2DirStats> {
        let mut s = L2DirStats::default();
        for seg in self.segment_paths()? {
            s.segments += 1;
            s.bytes += fs::metadata(&seg)?.len();
            for line in BufReader::new(File::open(&seg)?).lines() {
                let Ok(line) = line else {
                    s.skipped += 1;
                    continue;
                };
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str::<FactRecord>(&line) {
                    Ok(rec) if rec.is_coherent() => s.records += 1,
                    _ => s.skipped += 1,
                }
            }
        }
        Ok(s)
    }

    /// Fingerprint directories under `root` (for `cache stats` over a
    /// whole cache root).
    pub fn list_sites(root: &Path) -> std::io::Result<Vec<SiteFingerprint>> {
        let mut out = Vec::new();
        if !root.exists() {
            return Ok(out);
        }
        for entry in fs::read_dir(root)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            if let Some(fp) = entry.file_name().to_str().and_then(SiteFingerprint::parse) {
                out.push(fp);
            }
        }
        out.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_model::{AttrId, Attribute, SchemaBuilder};

    fn schema() -> Schema {
        SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::categorical("make", ["a", "b", "c"]).unwrap())
            .finish()
            .unwrap()
    }

    fn q(pairs: &[(u16, u16)]) -> ConjunctiveQuery {
        ConjunctiveQuery::from_pairs(pairs.iter().map(|&(a, v)| (AttrId(a), v))).unwrap()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hds-l2-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<FactRecord> {
        vec![
            FactRecord::empty(q(&[(0, 1), (1, 0)]), 100),
            FactRecord::overflow(q(&[(0, 0)]), 200),
            FactRecord::valid(q(&[(0, 1)]), vec![Row::new(42, vec![1, 2], vec![1.5])], 300),
            FactRecord::count(q(&[(1, 1)]), 7, 400),
        ]
    }

    #[test]
    fn fingerprints_are_stable_and_sensitive() {
        let s = schema();
        let a = SiteFingerprint::derive(&s, 10, true, Some(1));
        let b = SiteFingerprint::derive(&s, 10, true, Some(1));
        assert_eq!(a, b, "same inputs, same identity");
        assert_ne!(a, SiteFingerprint::derive(&s, 11, true, Some(1)), "k");
        assert_ne!(a, SiteFingerprint::derive(&s, 10, false, Some(1)), "counts");
        assert_ne!(a, SiteFingerprint::derive(&s, 10, true, Some(2)), "dataset");
        assert_ne!(a, SiteFingerprint::derive(&s, 10, true, None), "no digest");
        assert!(a.as_str().starts_with("hds1-"));
        assert_eq!(SiteFingerprint::parse(a.as_str()), Some(a));
        assert_eq!(SiteFingerprint::parse("hds1-xyz"), None);
        assert_eq!(SiteFingerprint::parse("hds0-0123456789abcdef"), None);
        assert_eq!(
            SiteFingerprint::parse("hds1-0123456789ABCDEF"),
            None,
            "uppercase is not our rendering"
        );
    }

    #[test]
    fn append_load_roundtrip() {
        let root = tmpdir("roundtrip");
        let fp = SiteFingerprint::derive(&schema(), 5, false, None);
        let log = L2Log::open(&root, fp.clone()).unwrap();
        let recs = sample_records();
        for r in &recs {
            log.append(r).unwrap();
        }
        assert_eq!(log.load().unwrap(), recs);
        // A fresh handle (new process) sees the same facts and appends
        // after them.
        let log2 = L2Log::open(&root, fp).unwrap();
        log2.append(&FactRecord::count(q(&[(0, 0)]), 3, 500))
            .unwrap();
        let all = log2.load().unwrap();
        assert_eq!(all.len(), recs.len() + 1);
        assert_eq!(all[..recs.len()], recs[..]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn rotation_splits_segments_and_preserves_order() {
        let root = tmpdir("rotate");
        let fp = SiteFingerprint::derive(&schema(), 5, false, None);
        let cfg = L2Config {
            rotate_records: 3,
            compact_at_segments: 100,
        };
        let log = L2Log::open_with(&root, fp, cfg).unwrap();
        for i in 0..10u64 {
            log.append(&FactRecord::count(q(&[(0, (i % 2) as u16)]), i, i))
                .unwrap();
        }
        let stats = log.stats().unwrap();
        assert_eq!(stats.segments, 4, "10 records at 3/segment");
        assert_eq!(stats.records, 10);
        assert_eq!(stats.skipped, 0);
        let loaded = log.load().unwrap();
        let stamps: Vec<u64> = loaded.iter().map(|r| r.learned_at).collect();
        assert_eq!(stamps, (0..10).collect::<Vec<_>>(), "learn order preserved");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn compaction_dedups_keeping_earliest_stamp() {
        let root = tmpdir("compact");
        let fp = SiteFingerprint::derive(&schema(), 5, false, None);
        let cfg = L2Config {
            rotate_records: 2,
            compact_at_segments: 100,
        };
        let log = L2Log::open_with(&root, fp, cfg).unwrap();
        // The same count fact learned in three "runs" at different stamps,
        // plus a distinct fact per run.
        for (run, stamp) in [(0u16, 500u64), (1, 100), (2, 900)] {
            log.append(&FactRecord::count(q(&[(0, 0)]), 7, stamp))
                .unwrap();
            log.append(&FactRecord::empty(q(&[(0, 1), (1, run)]), stamp))
                .unwrap();
        }
        let report = log.compact().unwrap();
        assert_eq!(report.records_before, 6);
        assert_eq!(report.records_after, 4, "3 count dupes collapse to 1");
        assert!(report.segments_before >= 3);
        let loaded = log.load().unwrap();
        assert_eq!(loaded.len(), 4);
        let the_count = loaded.iter().find(|r| r.kind == "count").unwrap();
        assert_eq!(the_count.learned_at, 100, "earliest stamp wins");
        assert_eq!(log.stats().unwrap().segments, 1);
        // Appends continue cleanly after compaction.
        log.append(&FactRecord::overflow(q(&[(1, 2)]), 950))
            .unwrap();
        assert_eq!(log.load().unwrap().len(), 5);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_compacts_when_segments_pile_up() {
        let root = tmpdir("autocompact");
        let fp = SiteFingerprint::derive(&schema(), 5, false, None);
        let cfg = L2Config {
            rotate_records: 1,
            compact_at_segments: 3,
        };
        {
            let log = L2Log::open_with(&root, fp.clone(), cfg).unwrap();
            for i in 0..5u64 {
                log.append(&FactRecord::count(q(&[(0, 0)]), 7, i)).unwrap();
            }
            assert_eq!(log.stats().unwrap().segments, 5);
        }
        let log = L2Log::open_with(&root, fp, cfg).unwrap();
        let stats = log.stats().unwrap();
        assert_eq!(stats.segments, 1, "startup compaction collapsed the pile");
        assert_eq!(stats.records, 1, "dupes deduplicated");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn clear_removes_everything() {
        let root = tmpdir("clear");
        let fp = SiteFingerprint::derive(&schema(), 5, false, None);
        let log = L2Log::open(&root, fp).unwrap();
        for r in sample_records() {
            log.append(&r).unwrap();
        }
        log.clear().unwrap();
        assert_eq!(log.stats().unwrap(), L2DirStats::default());
        assert!(log.load().unwrap().is_empty());
        // Usable again after the wipe.
        log.append(&FactRecord::empty(q(&[(0, 0)]), 1)).unwrap();
        assert_eq!(log.load().unwrap().len(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tail_and_garbage_prefix_are_skipped_not_fatal() {
        let root = tmpdir("torn");
        let fp = SiteFingerprint::derive(&schema(), 5, false, None);
        let recs = sample_records();
        {
            let log = L2Log::open(&root, fp.clone()).unwrap();
            for r in &recs {
                log.append(r).unwrap();
            }
        }
        let seg = root.join(fp.as_str()).join("seg-00000.jsonl");
        let mut bytes = fs::read(&seg).unwrap();
        // Torn final record: half a line, no trailing newline.
        bytes.extend_from_slice(&serde_json::to_string(&recs[0]).unwrap().as_bytes()[..20]);
        // And a garbage prefix in front of everything.
        let mut poisoned = b"\x00\xffgarbage\n".to_vec();
        poisoned.extend_from_slice(&bytes);
        fs::write(&seg, &poisoned).unwrap();

        let log = L2Log::open(&root, fp).unwrap();
        let loaded = log.load().unwrap();
        assert_eq!(loaded, recs, "good records survive around the damage");
        assert_eq!(log.skipped(), 2, "garbage line + torn tail counted");
        let stats = log.stats().unwrap();
        assert_eq!(stats.records, recs.len() as u64);
        assert_eq!(stats.skipped, 2);
        // New appends land after the torn line, on their own line.
        log.append(&FactRecord::count(q(&[(1, 2)]), 9, 999))
            .unwrap();
        assert_eq!(log.load().unwrap().len(), recs.len() + 1);
        fs::remove_dir_all(&root).unwrap();
    }

    proptest::proptest! {
        #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(64))]

        /// Satellite: replaying an arbitrary truncation of a valid log
        /// never panics, yields a prefix of the original records, and
        /// counts at most one skip (the torn tail).
        #[test]
        fn arbitrary_truncations_replay_a_prefix(cut in 0usize..2_000, garbage in 0usize..3) {
            let root = tmpdir("trunc-prop");
            let fp = SiteFingerprint::derive(&schema(), 5, false, None);
            let recs = sample_records();
            {
                let log = L2Log::open(&root, fp.clone()).unwrap();
                for r in &recs {
                    log.append(r).unwrap();
                }
            }
            let seg = root.join(fp.as_str()).join("seg-00000.jsonl");
            let mut bytes = fs::read(&seg).unwrap();
            let cut = cut.min(bytes.len());
            bytes.truncate(cut);
            // Optionally smear garbage bytes over the fresh cut too.
            bytes.extend(std::iter::repeat_n(0xFF, garbage));
            fs::write(&seg, &bytes).unwrap();

            let log = L2Log::open(&root, fp).unwrap();
            let loaded = log.load().unwrap();
            proptest::prop_assert!(loaded.len() <= recs.len());
            proptest::prop_assert_eq!(&recs[..loaded.len()], &loaded[..], "always a clean prefix");
            proptest::prop_assert!(log.skipped() <= 1, "at most the torn tail is skipped");
            fs::remove_dir_all(&root).unwrap();
        }
    }

    #[test]
    fn list_sites_finds_only_fingerprint_dirs() {
        let root = tmpdir("list");
        let fp1 = SiteFingerprint::derive(&schema(), 5, false, None);
        let fp2 = SiteFingerprint::derive(&schema(), 9, true, Some(3));
        L2Log::open(&root, fp1.clone()).unwrap();
        L2Log::open(&root, fp2.clone()).unwrap();
        fs::create_dir_all(root.join("not-a-fingerprint")).unwrap();
        let mut expect = vec![fp1, fp2];
        expect.sort_by(|a, b| a.as_str().cmp(b.as_str()));
        assert_eq!(L2Log::list_sites(&root).unwrap(), expect);
        assert!(L2Log::list_sites(&root.join("missing")).unwrap().is_empty());
        fs::remove_dir_all(&root).unwrap();
    }
}
