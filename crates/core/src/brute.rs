//! BRUTE-FORCE-SAMPLER: provably uniform, impractically slow (§3.4).
//!
//! The sampler draws a *fully specified* assignment uniformly from the
//! domain product of the drillable attributes, submits it, and — because a
//! fully specified query can essentially never overflow — either hits a
//! tiny result set or (overwhelmingly often) nothing at all. Its success
//! probability is `#occupied cells / B`, which is why the paper uses it
//! only as a ground-truth reference: "BRUTE-FORCE-SAMPLER is extremely slow
//! and thus cannot be used in practice" (§3.4).
//!
//! ## Duplicates
//!
//! Real data may hold several tuples with identical queryable attributes
//! (`j > 1` rows for one assignment). Picking one of `j` rows uniformly
//! would under-represent tuples in crowded cells, so the sampler draws a
//! slot `r` uniform in `0..dup_cap` and accepts only if `r < j`: every
//! tuple in cells with `j ≤ dup_cap` is output with identical probability
//! `1/(B · dup_cap)`. Cells beyond `dup_cap` (astronomically rare for
//! realistic caps) are clipped and counted in
//! [`BruteForceSampler::duplicate_clips`].

use hdsampler_model::{AttrId, Classification, ConjunctiveQuery, DomIx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SamplerConfig;
use crate::executor::QueryExecutor;
use crate::sample::{Sample, SampleMeta, Sampler, SamplerError};
use crate::stats::SamplerStats;
use crate::walk::{domain_product, resolve_drill_attrs};

/// The BRUTE-FORCE-SAMPLER.
#[derive(Debug)]
pub struct BruteForceSampler<E> {
    exec: E,
    cfg: SamplerConfig,
    drill: Vec<AttrId>,
    b_product: f64,
    rng: StdRng,
    stats: SamplerStats,
    duplicate_clips: u64,
}

impl<E: QueryExecutor> BruteForceSampler<E> {
    /// Construct over an executor. The acceptance policy is ignored: brute
    /// force is inherently uniform.
    pub fn new(exec: E, cfg: SamplerConfig) -> Result<Self, SamplerError> {
        cfg.scope
            .validate(exec.schema())
            .map_err(|e| SamplerError::Config(e.to_string()))?;
        if cfg.brute_dup_cap == 0 {
            return Err(SamplerError::Config("brute_dup_cap must be ≥ 1".into()));
        }
        let drill = resolve_drill_attrs(exec.schema(), &cfg.scope, cfg.drill_attrs.as_deref())?;
        let b_product = domain_product(exec.schema(), &drill);
        if b_product > 1e15 {
            // Not an error — the paper's point is exactly that this blows
            // up — but the caller almost certainly misconfigured the run.
            // We still proceed; the walk limit will stop us.
        }
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xB12F_0005);
        Ok(BruteForceSampler {
            exec,
            cfg,
            drill,
            b_product,
            rng,
            stats: SamplerStats::default(),
            duplicate_clips: 0,
        })
    }

    /// Cells observed with more than `dup_cap` duplicates (slightly
    /// under-weighted; should be zero on healthy configurations).
    pub fn duplicate_clips(&self) -> u64 {
        self.duplicate_clips
    }

    /// Domain product `B` of the drillable attributes.
    pub fn domain_product(&self) -> f64 {
        self.b_product
    }

    /// Access the underlying executor.
    pub fn executor(&self) -> &E {
        &self.exec
    }

    fn random_assignment(&mut self) -> ConjunctiveQuery {
        let schema = self.exec.schema();
        let mut q = self.cfg.scope.clone();
        for &attr in &self.drill {
            let dom = schema.domain_size(attr);
            let v = self.rng.gen_range(0..dom) as DomIx;
            q = q.refine(attr, v).expect("drill attrs unbound");
        }
        q
    }
}

impl<E: QueryExecutor> Sampler for BruteForceSampler<E> {
    fn next_sample(&mut self) -> Result<Sample, SamplerError> {
        let dup_cap = self.cfg.brute_dup_cap;
        let mut attempts = 0u64;
        loop {
            if attempts >= self.cfg.max_walks_per_sample {
                self.stats.requests = self.exec.requests();
                self.stats.queries_issued = self.exec.queries_issued();
                return Err(SamplerError::WalkLimit { walks: attempts });
            }
            attempts += 1;
            self.stats.walks += 1;

            let q = self.random_assignment();
            let resp = self.exec.classify(&q).map_err(|e| {
                self.stats.requests = self.exec.requests();
                self.stats.queries_issued = self.exec.queries_issued();
                SamplerError::from(e)
            })?;
            match resp.class {
                Classification::Empty => {
                    self.stats.dead_ends += 1;
                }
                Classification::Overflow => {
                    // > k identical tuples: unsampleable, same as drill-down.
                    self.stats.leaf_overflows += 1;
                }
                Classification::Valid => {
                    self.stats.candidates += 1;
                    let rows = resp.rows.as_ref().expect("valid carries rows");
                    let j = rows.len();
                    if j > dup_cap {
                        self.duplicate_clips += 1;
                    }
                    let r = self.rng.gen_range(0..dup_cap.max(j));
                    if r < j {
                        self.stats.accepted += 1;
                        self.stats.requests = self.exec.requests();
                        self.stats.queries_issued = self.exec.queries_issued();
                        return Ok(Sample {
                            row: rows[r].clone(),
                            weight: 1.0,
                            meta: SampleMeta {
                                depth: self.drill.len(),
                                result_size: j,
                                acceptance: (j as f64 / dup_cap as f64).min(1.0),
                                walks: attempts,
                            },
                        });
                    }
                    self.stats.rejected += 1;
                }
            }
        }
    }

    fn stats(&self) -> SamplerStats {
        let mut s = self.stats;
        s.requests = self.exec.requests();
        s.queries_issued = self.exec.queries_issued();
        s
    }

    fn name(&self) -> &'static str {
        "BRUTE-FORCE-SAMPLER"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::DirectExecutor;
    use hdsampler_workload::figure1_db;

    #[test]
    fn uniform_on_figure1() {
        let db = figure1_db(1);
        let cfg = SamplerConfig::seeded(21);
        let mut s = BruteForceSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        let n = 4_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let smp = s.next_sample().unwrap();
            *counts.entry(smp.row.values.to_vec()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (vals, c) in &counts {
            let share = *c as f64 / n as f64;
            assert!((share - 0.25).abs() < 0.025, "tuple {vals:?} share {share}");
        }
        assert_eq!(s.duplicate_clips(), 0);
    }

    #[test]
    fn slower_than_the_occupancy_bound_predicts() {
        // 4 occupied cells of 8, dup_cap = 8 ⇒ success ≈ 4/(8·8) = 1/16;
        // hundreds of samples should certify the expected cost shape.
        let db = figure1_db(1);
        let cfg = SamplerConfig::seeded(22);
        let mut s = BruteForceSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        for _ in 0..300 {
            s.next_sample().unwrap();
        }
        let wps = s.stats().walks_per_sample();
        assert!(
            (10.0..25.0).contains(&wps),
            "walks/sample {wps}, expected ≈ 16"
        );
    }

    #[test]
    fn duplicates_handled_uniformly() {
        // Database: cell A holds 2 duplicates, cell B holds 1 tuple.
        // Uniform-over-tuples means A-tuples together get 2/3 of samples.
        use hdsampler_hidden_db::HiddenDb;
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema)).result_limit(10);
        b.push(&Tuple::new(&schema, vec![0], vec![]).unwrap())
            .unwrap();
        b.push(&Tuple::new(&schema, vec![0], vec![]).unwrap())
            .unwrap();
        b.push(&Tuple::new(&schema, vec![1], vec![]).unwrap())
            .unwrap();
        let db = b.finish();

        let cfg = SamplerConfig::seeded(23);
        let mut s = BruteForceSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        let n = 3_000;
        let mut zero_cell = 0u32;
        for _ in 0..n {
            let smp = s.next_sample().unwrap();
            if smp.row.values[0] == 0 {
                zero_cell += 1;
            }
        }
        let share = zero_cell as f64 / n as f64;
        assert!(
            (share - 2.0 / 3.0).abs() < 0.03,
            "duplicate cell share {share}"
        );
    }

    #[test]
    fn zero_dup_cap_rejected() {
        let db = figure1_db(1);
        let mut cfg = SamplerConfig::seeded(1);
        cfg.brute_dup_cap = 0;
        assert!(matches!(
            BruteForceSampler::new(DirectExecutor::new(&db), cfg),
            Err(SamplerError::Config(_))
        ));
    }
}
