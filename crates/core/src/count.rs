//! Count-weighted drill-down (ref [2], ICDE 2009).
//!
//! When the interface reports result *counts* (even for overflowing
//! queries), the walk no longer needs to gamble: at each level it probes
//! its children's counts and descends into child `v` with probability
//! `c(q ∧ a=v) / Σ_w c(q ∧ a=w)`. Telescoping, the probability of reaching
//! any node equals `count(node)/count(scope)`, so picking one of the `j`
//! rows of the first non-overflowing node uniformly yields an **exactly
//! uniform** sample with **zero rejections** — when the counts are exact.
//!
//! Sites like Google Base report only *approximate* counts (§3.1 — the
//! demo "ignores" them for this reason). This sampler can still run on
//! noisy counts: the descent becomes biased, and each sample carries an
//! importance `weight` (the inverse of its realized selection probability,
//! up to the unknown global constant) that lets weighted estimators cancel
//! most of the bias. The count-sampler experiment quantifies both modes.
//!
//! ## Query cost
//!
//! A level with branching factor `b` needs `b − 1` count probes — the last
//! child's count is *derived* from the parent count (sibling-difference
//! rule, one of the ref [2] savings) — and the terminal node needs one
//! retrieval query. Memoized counts (via
//! [`CachingExecutor`](crate::history::CachingExecutor)) cut repeat visits
//! to the upper tree to zero charged queries.

use hdsampler_model::{AttrId, Classification, ConjunctiveQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::SamplerConfig;
use crate::executor::QueryExecutor;
use crate::sample::{Sample, SampleMeta, Sampler, SamplerError};
use crate::stats::SamplerStats;
use crate::walk::resolve_drill_attrs;

/// The count-weighted sampler.
#[derive(Debug)]
pub struct CountWalkSampler<E> {
    exec: E,
    cfg: SamplerConfig,
    drill: Vec<AttrId>,
    rng: StdRng,
    stats: SamplerStats,
    /// Count probes that were *derived* instead of issued.
    derived_counts: u64,
    /// Derived counts that went negative under noisy reporting (clamped).
    negative_derivations: u64,
}

impl<E: QueryExecutor> CountWalkSampler<E> {
    /// Construct over a count-reporting executor.
    ///
    /// # Errors
    /// [`SamplerError::CountUnsupported`] when the site has no count
    /// banner; [`SamplerError::Config`] on scope/drill errors.
    pub fn new(exec: E, cfg: SamplerConfig) -> Result<Self, SamplerError> {
        if !exec.supports_count() {
            return Err(SamplerError::CountUnsupported);
        }
        cfg.scope
            .validate(exec.schema())
            .map_err(|e| SamplerError::Config(e.to_string()))?;
        let drill = resolve_drill_attrs(exec.schema(), &cfg.scope, cfg.drill_attrs.as_deref())?;
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0_4217);
        Ok(CountWalkSampler {
            exec,
            cfg,
            drill,
            rng,
            stats: SamplerStats::default(),
            derived_counts: 0,
            negative_derivations: 0,
        })
    }

    /// Count probes answered by sibling-difference derivation.
    pub fn derived_counts(&self) -> u64 {
        self.derived_counts
    }

    /// Derivations clamped at zero (only possible under noisy counts).
    pub fn negative_derivations(&self) -> u64 {
        self.negative_derivations
    }

    /// Access the underlying executor.
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// One count-weighted descent. Returns `Ok(None)` on a dead end
    /// (possible only under noisy counts or leaf overflow).
    fn descend(&mut self) -> Result<Option<Sample>, SamplerError> {
        let k = self.exec.result_limit() as u64;
        let order = self.cfg.order.make_order(&self.drill, &mut self.rng);

        let mut query: ConjunctiveQuery = self.cfg.scope.clone();
        let mut count = self.exec.count(&query).map_err(SamplerError::from)?;
        if count == 0 {
            return Err(SamplerError::EmptyScope);
        }
        // log of the realized selection probability of the final node.
        let mut log_reach = 0.0f64;

        for depth in 0..=order.len() {
            if count <= k {
                // Reported small enough to retrieve. Under noisy counts the
                // truth may still overflow — fall through to drilling if so.
                let resp = self.exec.classify(&query).map_err(SamplerError::from)?;
                match resp.class {
                    Classification::Empty => {
                        self.stats.dead_ends += 1;
                        return Ok(None);
                    }
                    Classification::Valid => {
                        let rows = resp.rows.as_ref().expect("valid carries rows");
                        let j = rows.len();
                        let row = rows[self.rng.gen_range(0..j)].clone();
                        self.stats.candidates += 1;
                        self.stats.accepted += 1;
                        // P(select t) = P(reach node) / j, so the importance
                        // weight is j / P(reach); the unknown global
                        // constant cancels in self-normalized estimators.
                        // With exact counts this is N for every tuple.
                        let weight = j as f64 * (-log_reach).exp();
                        return Ok(Some(Sample {
                            row,
                            weight,
                            meta: SampleMeta {
                                depth,
                                result_size: j,
                                acceptance: 1.0,
                                walks: 1,
                            },
                        }));
                    }
                    Classification::Overflow => {
                        // Noisy banner under-reported; keep drilling.
                    }
                }
            }
            if depth == order.len() {
                self.stats.leaf_overflows += 1;
                return Ok(None);
            }

            // Probe children counts, deriving the last from the parent.
            let attr = order[depth];
            let dom = self.exec.schema().domain_size(attr);
            let mut child_counts = Vec::with_capacity(dom);
            let mut sum_known = 0u64;
            for v in 0..dom {
                if v + 1 == dom {
                    let derived = count.saturating_sub(sum_known);
                    if sum_known > count {
                        self.negative_derivations += 1;
                    }
                    self.derived_counts += 1;
                    child_counts.push(derived);
                } else {
                    let child = query.refine(attr, v as u16).expect("unbound");
                    let c = self.exec.count(&child).map_err(SamplerError::from)?;
                    sum_known += c;
                    child_counts.push(c);
                }
            }
            let total: u64 = child_counts.iter().sum();
            if total == 0 {
                // All children reported empty (noise artefact).
                self.stats.dead_ends += 1;
                return Ok(None);
            }
            // Weighted choice proportional to reported counts.
            let mut pick = self.rng.gen_range(0..total);
            let mut chosen = 0usize;
            for (v, &c) in child_counts.iter().enumerate() {
                if pick < c {
                    chosen = v;
                    break;
                }
                pick -= c;
            }
            log_reach += (child_counts[chosen] as f64 / total as f64).ln();
            query = query.refine(attr, chosen as u16).expect("unbound");
            count = child_counts[chosen];
        }
        unreachable!("loop returns at depth == order.len()");
    }
}

impl<E: QueryExecutor> Sampler for CountWalkSampler<E> {
    fn next_sample(&mut self) -> Result<Sample, SamplerError> {
        let mut walks = 0u64;
        loop {
            if walks >= self.cfg.max_walks_per_sample {
                return Err(SamplerError::WalkLimit { walks });
            }
            walks += 1;
            self.stats.walks += 1;
            match self.descend() {
                Ok(Some(mut sample)) => {
                    sample.meta.walks = walks;
                    self.stats.requests = self.exec.requests();
                    self.stats.queries_issued = self.exec.queries_issued();
                    return Ok(sample);
                }
                Ok(None) => continue,
                Err(e) => {
                    self.stats.requests = self.exec.requests();
                    self.stats.queries_issued = self.exec.queries_issued();
                    return Err(e);
                }
            }
        }
    }

    fn stats(&self) -> SamplerStats {
        let mut s = self.stats;
        s.requests = self.exec.requests();
        s.queries_issued = self.exec.queries_issued();
        s
    }

    fn name(&self) -> &'static str {
        "COUNT-WEIGHTED-SAMPLER"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::DirectExecutor;
    use crate::order::OrderStrategy;
    use hdsampler_hidden_db::{CountMode, HiddenDb};
    use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
    use std::sync::Arc;

    fn db_with_counts(mode: CountMode, k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("a1"))
            .attribute(Attribute::boolean("a2"))
            .attribute(Attribute::boolean("a3"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(Arc::clone(&schema))
            .result_limit(k)
            .count_mode(mode);
        for vals in [[0u16, 0, 1], [0, 1, 0], [0, 1, 1], [1, 1, 0]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn requires_count_support() {
        let db = db_with_counts(CountMode::Absent, 1);
        assert!(matches!(
            CountWalkSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(1)),
            Err(SamplerError::CountUnsupported)
        ));
    }

    #[test]
    fn exact_counts_give_uniform_zero_rejection() {
        let db = db_with_counts(CountMode::Exact, 1);
        let cfg = SamplerConfig::seeded(31).with_order(OrderStrategy::Fixed);
        let mut s = CountWalkSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        let n = 4_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let smp = s.next_sample().unwrap();
            assert!((smp.weight * 4.0 - 1.0).abs() < 1e-9 || smp.weight > 0.0);
            *counts.entry(smp.row.values.to_vec()).or_insert(0u32) += 1;
        }
        assert_eq!(counts.len(), 4);
        for (vals, c) in &counts {
            let share = *c as f64 / n as f64;
            assert!((share - 0.25).abs() < 0.025, "tuple {vals:?} share {share}");
        }
        let st = s.stats();
        assert_eq!(st.rejected, 0, "exact counts never reject");
        assert_eq!(st.walks, n as u64, "every walk yields a sample");
    }

    #[test]
    fn exact_weights_are_uniform() {
        // With exact counts every sample's weight equals N / j-corrected
        // constant — i.e. all weights are identical.
        let db = db_with_counts(CountMode::Exact, 1);
        let cfg = SamplerConfig::seeded(5).with_order(OrderStrategy::Fixed);
        let mut s = CountWalkSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        let w0 = s.next_sample().unwrap().weight;
        for _ in 0..50 {
            let w = s.next_sample().unwrap().weight;
            assert!(
                (w - w0).abs() < 1e-9,
                "exact-count weights must be constant: {w} vs {w0}"
            );
        }
    }

    #[test]
    fn derivation_saves_one_probe_per_level() {
        let db = db_with_counts(CountMode::Exact, 1);
        let cfg = SamplerConfig::seeded(7).with_order(OrderStrategy::Fixed);
        let mut s = CountWalkSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        for _ in 0..10 {
            s.next_sample().unwrap();
        }
        assert!(s.derived_counts() >= 10, "at least one derivation per walk");
        assert_eq!(s.negative_derivations(), 0, "exact counts never clamp");
    }

    #[test]
    fn noisy_counts_still_produce_samples_with_weights() {
        // A larger Boolean database so the banner counts are big enough for
        // the multiplicative noise to actually move them.
        let (schema, tuples) = hdsampler_workload::boolean_iid(6, 100, 0.5, 99);
        let mut b = HiddenDb::builder(schema)
            .result_limit(4)
            .count_mode(CountMode::Noisy {
                sigma: 0.3,
                seed: 3,
            });
        b.extend(tuples.iter()).unwrap();
        let db = b.finish();

        let cfg = SamplerConfig::seeded(11).with_order(OrderStrategy::Fixed);
        let mut s = CountWalkSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        let mut weights = Vec::new();
        for _ in 0..300 {
            let smp = s.next_sample().unwrap();
            assert!(smp.weight.is_finite() && smp.weight > 0.0);
            weights.push(smp.weight);
        }
        let min = weights.iter().cloned().fold(f64::MAX, f64::min);
        let max = weights.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > min * 1.01, "noise must produce varying weights");
    }

    #[test]
    fn empty_scope_detected() {
        let db = db_with_counts(CountMode::Exact, 1);
        let scope = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 0)]).unwrap();
        let cfg = SamplerConfig::seeded(2).with_scope(scope);
        let mut s = CountWalkSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        assert_eq!(s.next_sample(), Err(SamplerError::EmptyScope));
    }

    #[test]
    fn cheaper_than_rejection_sampling_on_the_same_tree() {
        // Exact-count descent needs ~(b-1) probes/level + 1 retrieval and
        // never restarts; HDS at C = 1 pays for rejected walks. Compare
        // charged queries for 100 samples on the same database.
        let db_counts = db_with_counts(CountMode::Exact, 1);
        let cfg = SamplerConfig::seeded(13).with_order(OrderStrategy::Fixed);
        let mut cs = CountWalkSampler::new(DirectExecutor::new(&db_counts), cfg).unwrap();
        for _ in 0..100 {
            cs.next_sample().unwrap();
        }
        let count_cost = cs.stats().queries_per_sample();

        let db_plain = db_with_counts(CountMode::Absent, 1);
        let cfg = SamplerConfig::seeded(13).with_order(OrderStrategy::Fixed);
        let mut hs = crate::hds::HdsSampler::new(DirectExecutor::new(&db_plain), cfg).unwrap();
        for _ in 0..100 {
            hs.next_sample().unwrap();
        }
        let hds_cost = hs.stats().queries_per_sample();
        assert!(
            count_cost < hds_cost,
            "count-weighted ({count_cost}) should beat rejection ({hds_cost})"
        );
    }
}
