//! HIDDEN-DB-SAMPLER: random drill-down + acceptance–rejection.
//!
//! This is the algorithm the demo system packages (§2, ref [1]): the Sample
//! Generator performs drill-down walks ([`crate::walk`]) and the Sample
//! Processor filters the resulting candidates
//! ([`crate::acceptance`]) so that, at scaling factor `C = 1`, every tuple
//! of the (scoped) database is emitted with identical probability per walk.

use hdsampler_model::AttrId;

use crate::config::SamplerConfig;
use crate::executor::QueryExecutor;
use crate::machine::{WalkMachine, WalkStep};
use crate::sample::{Sample, Sampler, SamplerError};
use crate::stats::SamplerStats;

/// The HIDDEN-DB-SAMPLER.
///
/// A thin synchronous loop over [`WalkMachine`]: every
/// [`WalkStep::NeedCount`] the machine yields is answered by a blocking
/// [`QueryExecutor::classify`] call. The cooperative driver in
/// `hdsampler-webform` runs the *same* machine with the answers arriving
/// from a pipelined wire instead — both paths consume the machine's RNG
/// identically, so, seed for seed, they produce the identical sample
/// sequence.
#[derive(Debug)]
pub struct HdsSampler<E> {
    exec: E,
    machine: WalkMachine,
}

impl<E: QueryExecutor> HdsSampler<E> {
    /// Construct a sampler over an executor.
    ///
    /// # Errors
    /// [`SamplerError::Config`] on invalid scope/drill configuration.
    pub fn new(exec: E, cfg: SamplerConfig) -> Result<Self, SamplerError> {
        let machine = WalkMachine::new(exec.schema(), cfg)?;
        Ok(HdsSampler { exec, machine })
    }

    /// The resolved scaling factor `C`.
    pub fn c_factor(&self) -> f64 {
        self.machine.c_factor()
    }

    /// The domain product `B` over the drillable attributes.
    pub fn domain_product(&self) -> f64 {
        self.machine.domain_product()
    }

    /// The drillable attributes in schema order.
    pub fn drill_attrs(&self) -> &[AttrId] {
        self.machine.drill_attrs()
    }

    /// Access the underlying executor (e.g. to read cache statistics).
    pub fn executor(&self) -> &E {
        &self.exec
    }
}

impl<E: QueryExecutor> Sampler for HdsSampler<E> {
    fn next_sample(&mut self) -> Result<Sample, SamplerError> {
        let mut step = self.machine.step();
        loop {
            match step {
                WalkStep::NeedCount(q) => step = self.machine.resume(self.exec.classify(&q)),
                WalkStep::Sample(s) => return Ok(s),
                WalkStep::Failed(e) => return Err(e),
            }
        }
    }

    fn stats(&self) -> SamplerStats {
        let mut s = self.machine.stats();
        s.requests = self.exec.requests();
        s.queries_issued = self.exec.queries_issued();
        s
    }

    fn name(&self) -> &'static str {
        "HIDDEN-DB-SAMPLER"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::acceptance::AcceptancePolicy;
    use crate::executor::DirectExecutor;
    use crate::order::OrderStrategy;
    use hdsampler_model::ConjunctiveQuery;
    use hdsampler_workload::figure1_db;

    #[test]
    fn uniform_on_figure1() {
        // C = 1 on the paper's own example: all four tuples equally likely.
        let db = figure1_db(1);
        let cfg = SamplerConfig::seeded(11).with_order(OrderStrategy::Fixed);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        assert_eq!(s.c_factor(), 1.0);
        assert_eq!(s.domain_product(), 8.0);

        let n = 4_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let smp = s.next_sample().unwrap();
            *counts.entry(smp.row.values.to_vec()).or_insert(0u32) += 1;
            assert_eq!(smp.weight, 1.0);
        }
        assert_eq!(counts.len(), 4, "all tuples reachable");
        for (vals, c) in &counts {
            let share = *c as f64 / n as f64;
            assert!(
                (share - 0.25).abs() < 0.025,
                "tuple {vals:?} share {share} (expect 0.25)"
            );
        }
        let stats = s.stats();
        assert_eq!(stats.accepted, n as u64);
        assert!(stats.rejected > 0, "C = 1 must reject some candidates");
        assert!(stats.queries_issued > 0);
    }

    #[test]
    fn accept_all_reproduces_raw_walk_skew() {
        // With AcceptAll the sampler must reproduce the §2 walk
        // distribution (t4 twice as likely as t1, four times t2/t3).
        let db = figure1_db(1);
        let cfg = SamplerConfig::seeded(5)
            .with_order(OrderStrategy::Fixed)
            .with_acceptance(AcceptancePolicy::AcceptAll);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        let n = 8_000;
        let mut t4 = 0u32;
        for _ in 0..n {
            let smp = s.next_sample().unwrap();
            if smp.row.values.as_ref() == [1, 1, 0] {
                t4 += 1;
            }
        }
        let share = t4 as f64 / n as f64;
        assert!(
            (share - 0.5).abs() < 0.02,
            "t4 share {share} under raw walk"
        );
        assert_eq!(s.stats().rejected, 0);
    }

    #[test]
    fn scoped_sampling_stays_in_scope() {
        let db = figure1_db(1);
        let scope = ConjunctiveQuery::from_pairs([(hdsampler_model::AttrId(1), 1)]).unwrap();
        let cfg = SamplerConfig::seeded(9).with_scope(scope);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        assert_eq!(s.domain_product(), 4.0, "two drillable Booleans remain");
        for _ in 0..200 {
            let smp = s.next_sample().unwrap();
            assert_eq!(smp.row.values[1], 1);
        }
    }

    #[test]
    fn empty_scope_reported() {
        let db = figure1_db(1);
        let scope = ConjunctiveQuery::from_pairs([
            (hdsampler_model::AttrId(0), 1),
            (hdsampler_model::AttrId(1), 0),
        ])
        .unwrap();
        let cfg = SamplerConfig::seeded(1).with_scope(scope);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        assert_eq!(s.next_sample(), Err(SamplerError::EmptyScope));
    }

    #[test]
    fn budget_exhaustion_surfaces() {
        use hdsampler_hidden_db::HiddenDb;
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema))
            .result_limit(1)
            .query_budget(3);
        for vals in [[0u16, 0], [0, 1], [1, 0], [1, 1]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let db = b.finish();
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(2)).unwrap();
        // Eventually the 3-query budget dies; every sample costs ≥ 1 query.
        let mut err = None;
        for _ in 0..10 {
            match s.next_sample() {
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert_eq!(err, Some(SamplerError::BudgetExhausted { issued: 3 }));
    }

    #[test]
    fn walk_limit_enforced() {
        // A database where every tuple shares one value behind k=1 and the
        // only drill attribute is useless: acceptance at C=1 is 1, but make
        // the walk limit 0 to force the error path.
        let db = figure1_db(1);
        let cfg = SamplerConfig::seeded(3).with_max_walks(0);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        assert_eq!(s.next_sample(), Err(SamplerError::WalkLimit { walks: 0 }));
    }

    #[test]
    fn invalid_drill_config_rejected() {
        let db = figure1_db(1);
        let cfg = SamplerConfig::seeded(1).with_drill_attrs(["bogus"]);
        assert!(matches!(
            HdsSampler::new(DirectExecutor::new(&db), cfg),
            Err(SamplerError::Config(_))
        ));
    }

    #[test]
    fn same_seed_same_samples() {
        let db = figure1_db(1);
        let mk = || {
            let mut s =
                HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(42)).unwrap();
            (0..20)
                .map(|_| s.next_sample().unwrap().row.key)
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
