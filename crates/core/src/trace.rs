//! Structured tracing and metrics: the observability subsystem.
//!
//! HDSampler's premise is inferring structure from per-query
//! observations, so the reproduction observes *itself* with the same
//! rigor: every driver emits typed [`TraceEvent`]s (walk steps, cache
//! hits, wire submits/completions, backoff sleeps, steals and stalls)
//! into attached [`TraceSink`]s, mirroring the
//! [`SampleSink`](crate::sink::SampleSink) fork/merge design so the same
//! plumbing carries both sample streams and their latency attribution.
//!
//! Determinism contract: on virtual wires every timestamp in a
//! [`TraceEvent`] is a virtual-clock reading, never wall time, so a
//! seeded run journals bit-identically across repetitions — traces
//! replay like everything else in this repo.
//!
//! Two consumers ship here:
//!
//! * [`TraceLog`] — an accumulating sink whose event vector becomes the
//!   JSONL journal (`--trace <path>`).
//! * [`MetricsSink`] — aggregates the same events into a shared
//!   [`MetricsRegistry`] of counters and fixed-bucket latency histograms
//!   (queue/service/backoff, split per connection), rendered in
//!   Prometheus text exposition for the `/metrics` endpoint.

use std::any::Any;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::sink::{SampleEvent, SampleSink};

/// One observability event. Flat on purpose — the vendored JSON layer
/// round-trips plain structs, and a flat record is what line-oriented
/// trace tooling wants anyway. Fields that do not apply to a given
/// `kind` are zero / empty.
///
/// | kind | detail | meaning |
/// |---|---|---|
/// | `walk` | `failed` | a walker's machine step failed terminally |
/// | `cache` | `hit` / `miss` | history-cache classification outcome |
/// | `l2` | `load` / `hit` / `miss` / `put` | persistent L2 fact-log tier activity |
/// | `wire` | `submit` / `complete` | a query left for / returned from the wire |
/// | `retry` | `backoff` | transient failure; `dur_ms` is the backoff wait |
/// | `stall` | `force` | coop driver forced the earliest pending fetch |
/// | `steal` | `s{donor}->s{receiver}` | work-stealing rebalance |
/// | `sample` | | an accepted sample; `seq` is the running count |
/// | `request` | target path | server-side request; `code` is the status |
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event class (see table above).
    pub kind: String,
    /// Event sub-class or free-form label.
    pub detail: String,
    /// Correlation tag (the `x-hds-trace` id on `request` events).
    pub tag: String,
    /// Span id tying a `wire` submit to its completion (0 when n/a).
    pub span: u64,
    /// Site index.
    pub site: u64,
    /// Walker index within the site.
    pub walker: u64,
    /// Connection index.
    pub conn: u64,
    /// Ordinal (running sample count, or server request number).
    pub seq: u64,
    /// Numeric payload (HTTP status on `request` events).
    pub code: u64,
    /// Virtual-clock timestamp of the event, in wire milliseconds.
    pub at_ms: u64,
    /// Duration: wire submit→complete, backoff wait, request service.
    pub dur_ms: u64,
    /// Portion of `dur_ms` spent queued behind the connection.
    pub queue_ms: u64,
}

/// A streaming observer of trace events — [`SampleSink`]'s sibling, with
/// the identical fork/merge contract: forks observe one worker's (or
/// site's) stream, merges fold them back in worker order, so parallel
/// observation is deterministic for order-insensitive sinks and the
/// single-threaded paths are bit-exact.
pub trait TraceSink: Send + 'static {
    /// Observe one event.
    fn observe(&mut self, event: &TraceEvent);

    /// A sink for a parallel worker (fresh empty for accumulators,
    /// another handle for shared-state sinks).
    fn fork(&self) -> Box<dyn TraceSink>;

    /// Fold a [`fork`](TraceSink::fork)ed sink back in.
    ///
    /// # Panics
    /// Panics if `other` is not the same concrete type as `self`.
    fn merge(&mut self, other: Box<dyn TraceSink>);

    /// The sink as [`Any`], for snapshot retrieval through a trait object.
    fn as_any(&self) -> &dyn Any;

    /// Consume the boxed sink as [`Any`] (the `merge` down-casting hook).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Deliver one event to every sink in a set.
pub fn trace_all(sinks: &mut [&mut dyn TraceSink], event: &TraceEvent) {
    for sink in sinks.iter_mut() {
        sink.observe(event);
    }
}

/// Down-cast a merged-in trace sink to the expected concrete type, with a
/// uniform panic message (helper for `merge` implementations).
pub fn merged_trace<T: TraceSink>(other: Box<dyn TraceSink>) -> Box<T> {
    other
        .into_any()
        .downcast::<T>()
        .expect("TraceSink::merge: forked sink has a different concrete type")
}

/// A trace sink that discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTraceSink;

impl TraceSink for NullTraceSink {
    fn observe(&mut self, _: &TraceEvent) {}

    fn fork(&self) -> Box<dyn TraceSink> {
        Box::new(NullTraceSink)
    }

    fn merge(&mut self, other: Box<dyn TraceSink>) {
        let _ = merged_trace::<NullTraceSink>(other);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// An accumulating trace sink: the in-memory face of the JSONL journal.
/// Forks start empty and merges concatenate, so a fork-per-worker run
/// journals in worker order.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Events observed so far, in observation order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drain the log.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for TraceLog {
    fn observe(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }

    fn fork(&self) -> Box<dyn TraceSink> {
        Box::new(TraceLog::new())
    }

    fn merge(&mut self, other: Box<dyn TraceSink>) {
        let other = merged_trace::<TraceLog>(other);
        self.events.extend(other.events);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// A driver's handle on its attached trace sinks: fans events out and
/// hands out span ids. When no sinks are attached [`Tracer::enabled`] is
/// false and callers skip event construction entirely, so tracing
/// disabled costs a branch, not an allocation.
pub struct Tracer<'r, 's> {
    sinks: &'r mut [&'s mut dyn TraceSink],
    next_span: u64,
}

impl<'r, 's> Tracer<'r, 's> {
    /// Tracer over `sinks` (possibly empty).
    pub fn new(sinks: &'r mut [&'s mut dyn TraceSink]) -> Self {
        Tracer {
            sinks,
            next_span: 0,
        }
    }

    /// Whether any sink is attached — gate event construction on this.
    pub fn enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// A fresh span id (1-based; deterministic: a plain counter).
    pub fn next_span(&mut self) -> u64 {
        self.next_span += 1;
        self.next_span
    }

    /// Deliver `event` to every attached sink.
    pub fn emit(&mut self, event: &TraceEvent) {
        trace_all(self.sinks, event);
    }
}

/// A [`SampleSink`] that mirrors accepted samples into trace events —
/// how the threaded and serial drivers (which predate tracing) feed a
/// journal without new plumbing: attach the bridge as a sample sink,
/// then drain [`SampleTraceSink::take`] into the trace sinks after the
/// run. Forks start empty and merges concatenate, inheriting the sample
/// plumbing's determinism.
#[derive(Debug, Clone, Default)]
pub struct SampleTraceSink {
    events: Vec<TraceEvent>,
}

impl SampleTraceSink {
    /// Empty bridge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain the mirrored events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl SampleSink for SampleTraceSink {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.events.push(TraceEvent {
            kind: "sample".into(),
            site: event.site as u64,
            walker: event.walker as u64,
            seq: event.collected as u64,
            ..TraceEvent::default()
        });
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        Box::new(SampleTraceSink::new())
    }

    fn merge(&mut self, other: Box<dyn SampleSink>) {
        let other = crate::sink::merged::<SampleTraceSink>(other);
        self.events.extend(other.events);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Upper bounds (inclusive, in wire milliseconds) of the fixed latency
/// histogram buckets; everything above the last bound lands in `+Inf`.
pub const LATENCY_BUCKETS_MS: [u64; 12] = [1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000];

#[derive(Debug, Clone, Default)]
struct Histogram {
    buckets: [u64; LATENCY_BUCKETS_MS.len()],
    sum: u64,
    count: u64,
}

impl Histogram {
    fn observe(&mut self, value: u64) {
        for (i, bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
            if value <= *bound {
                self.buckets[i] += 1;
            }
        }
        self.sum += value;
        self.count += 1;
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A shared registry of named counters, gauges and fixed-bucket latency
/// histograms. Cloning shares the underlying storage (the registry is a
/// handle), so forked sinks and a serving thread all see one state.
///
/// Names may carry baked-in Prometheus labels (`name{conn="0"}`);
/// [`MetricsRegistry::render`] splices histogram suffixes and the `le`
/// label in correctly either way. Rendering iterates `BTreeMap`s, so the
/// exposition text is deterministic for a given state.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name`, registering it at 0 first if new.
    pub fn add(&self, name: &str, delta: u64) {
        *self
            .inner
            .counters
            .lock()
            .entry(name.to_string())
            .or_insert(0) += delta;
    }

    /// Increment counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: u64) {
        self.inner.gauges.lock().insert(name.to_string(), value);
    }

    /// Record one observation into histogram `name`.
    pub fn observe_ms(&self, name: &str, value: u64) {
        self.inner
            .histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .observe(value);
    }

    /// Render the registry in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, value) in self.inner.counters.lock().iter() {
            type_line(&mut out, &mut last_family, name, "counter");
            let _ = writeln!(out, "{name} {value}");
        }
        last_family.clear();
        for (name, value) in self.inner.gauges.lock().iter() {
            type_line(&mut out, &mut last_family, name, "gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        last_family.clear();
        for (name, hist) in self.inner.histograms.lock().iter() {
            type_line(&mut out, &mut last_family, name, "histogram");
            let (base, labels) = split_labels(name);
            for (i, bound) in LATENCY_BUCKETS_MS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{} {}",
                    labeled(base, labels, &format!("le=\"{bound}\""), "_bucket"),
                    hist.buckets[i]
                );
            }
            let _ = writeln!(
                out,
                "{} {}",
                labeled(base, labels, "le=\"+Inf\"", "_bucket"),
                hist.count
            );
            let _ = writeln!(out, "{} {}", labeled(base, labels, "", "_sum"), hist.sum);
            let _ = writeln!(
                out,
                "{} {}",
                labeled(base, labels, "", "_count"),
                hist.count
            );
        }
        out
    }
}

/// Emit a `# TYPE` header when the metric family changes.
fn type_line(out: &mut String, last_family: &mut String, name: &str, kind: &str) {
    let family = split_labels(name).0;
    if family != last_family {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        last_family.clear();
        last_family.push_str(family);
    }
}

/// Split `name{labels}` into `(name, labels)`; labels is `""` when bare.
fn split_labels(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}').unwrap_or(rest)),
        None => (name, ""),
    }
}

/// Build `base{suffix}{existing,extra}` with correct comma/brace
/// handling for histogram series names.
fn labeled(base: &str, existing: &str, extra: &str, suffix: &str) -> String {
    let mut labels = existing.to_string();
    if !extra.is_empty() {
        if !labels.is_empty() {
            labels.push(',');
        }
        labels.push_str(extra);
    }
    if labels.is_empty() {
        format!("{base}{suffix}")
    } else {
        format!("{base}{suffix}{{{labels}}}")
    }
}

/// Escape a string for use inside a Prometheus label value.
pub fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Parse a Prometheus text exposition back into `series name → value`.
///
/// Accepts exactly what [`MetricsRegistry::render`] (and the server's
/// `/metrics` endpoint) emit: `# `-prefixed comment lines and
/// `name[{labels}] value` samples. Errors on anything else — the
/// round-trip property tests lean on this being strict.
pub fn parse_exposition(text: &str) -> Result<BTreeMap<String, f64>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no space separator: {line:?}", lineno + 1))?;
        if name.is_empty() || !name.starts_with(|c: char| c.is_ascii_alphabetic() || c == '_') {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        let value: f64 = value
            .parse()
            .map_err(|e| format!("line {}: bad value {value:?}: {e}", lineno + 1))?;
        out.insert(name.to_string(), value);
    }
    Ok(out)
}

/// A [`TraceSink`] that aggregates events into a shared
/// [`MetricsRegistry`] — the cheap always-on path when full journaling
/// is off. Forks share the registry; merge is a no-op.
#[derive(Debug, Clone)]
pub struct MetricsSink {
    registry: MetricsRegistry,
}

impl MetricsSink {
    /// Sink feeding `registry`.
    pub fn new(registry: MetricsRegistry) -> Self {
        MetricsSink { registry }
    }

    /// The shared registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl TraceSink for MetricsSink {
    fn observe(&mut self, event: &TraceEvent) {
        let r = &self.registry;
        r.inc(&format!(
            "hds_trace_events_total{{kind=\"{}\",detail=\"{}\"}}",
            escape_label(&event.kind),
            escape_label(&event.detail)
        ));
        match (event.kind.as_str(), event.detail.as_str()) {
            ("wire", "complete") => {
                let service = event.dur_ms.saturating_sub(event.queue_ms);
                r.observe_ms("hds_wire_queue_ms", event.queue_ms);
                r.observe_ms("hds_wire_service_ms", service);
                r.observe_ms(
                    &format!("hds_wire_queue_ms{{conn=\"{}\"}}", event.conn),
                    event.queue_ms,
                );
                r.observe_ms(
                    &format!("hds_wire_service_ms{{conn=\"{}\"}}", event.conn),
                    service,
                );
            }
            ("retry", _) => {
                r.observe_ms("hds_backoff_ms", event.dur_ms);
                r.observe_ms(
                    &format!("hds_backoff_ms{{conn=\"{}\"}}", event.conn),
                    event.dur_ms,
                );
            }
            ("cache", "hit") => r.inc("hds_cache_hits_total"),
            ("cache", "miss") => r.inc("hds_cache_misses_total"),
            ("l2", "load") => r.inc("hds_l2_loads_total"),
            ("l2", "hit") => r.inc("hds_l2_hits_total"),
            ("l2", "miss") => r.inc("hds_l2_misses_total"),
            ("l2", "put") => r.inc("hds_l2_puts_total"),
            ("sample", _) => r.inc("hds_samples_total"),
            _ => {}
        }
    }

    fn fork(&self) -> Box<dyn TraceSink> {
        Box::new(self.clone())
    }

    fn merge(&mut self, other: Box<dyn TraceSink>) {
        let _ = merged_trace::<MetricsSink>(other);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire_complete(conn: u64, at_ms: u64, dur_ms: u64, queue_ms: u64) -> TraceEvent {
        TraceEvent {
            kind: "wire".into(),
            detail: "complete".into(),
            conn,
            at_ms,
            dur_ms,
            queue_ms,
            ..TraceEvent::default()
        }
    }

    #[test]
    fn trace_log_fork_merge_concatenates() {
        let mut log = TraceLog::new();
        log.observe(&wire_complete(0, 10, 10, 0));
        let mut f0 = log.fork();
        let mut f1 = log.fork();
        f0.observe(&wire_complete(1, 20, 10, 5));
        f1.observe(&wire_complete(2, 30, 10, 5));
        log.merge(f0);
        log.merge(f1);
        let conns: Vec<u64> = log.events().iter().map(|e| e.conn).collect();
        assert_eq!(conns, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "different concrete type")]
    fn merging_a_mismatched_trace_sink_panics() {
        let mut log = TraceLog::new();
        log.merge(Box::new(NullTraceSink));
    }

    #[test]
    fn tracer_hands_out_sequential_spans_and_fans_out() {
        let mut a = TraceLog::new();
        let mut b = TraceLog::new();
        {
            let mut sinks: Vec<&mut dyn TraceSink> = vec![&mut a, &mut b];
            let mut tracer = Tracer::new(&mut sinks);
            assert!(tracer.enabled());
            assert_eq!(tracer.next_span(), 1);
            assert_eq!(tracer.next_span(), 2);
            tracer.emit(&wire_complete(0, 1, 1, 0));
        }
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        let mut none: Vec<&mut dyn TraceSink> = vec![];
        assert!(!Tracer::new(&mut none).enabled());
    }

    #[test]
    fn sample_trace_bridge_mirrors_sample_events() {
        use crate::sample::{Sample, SampleMeta};
        use hdsampler_model::Row;
        let s = Sample {
            row: Row::new(7, vec![0], vec![]),
            weight: 1.0,
            meta: SampleMeta::default(),
        };
        let mut bridge = SampleTraceSink::new();
        bridge.observe(&SampleEvent {
            sample: &s,
            site: 2,
            walker: 3,
            collected: 4,
            target: 10,
            queries: 12,
            requests: 20,
        });
        let events = bridge.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, "sample");
        assert_eq!(events[0].site, 2);
        assert_eq!(events[0].walker, 3);
        assert_eq!(events[0].seq, 4);
        assert!(bridge.take().is_empty());
    }

    #[test]
    fn registry_counts_and_renders_deterministically() {
        let r = MetricsRegistry::new();
        r.inc("b_total");
        r.add("a_total", 3);
        r.set_gauge("g", 9);
        r.observe_ms("lat_ms", 7);
        r.observe_ms("lat_ms", 6000);
        let text = r.render();
        assert_eq!(r.counter("a_total"), 3);
        assert_eq!(text, r.render(), "rendering is a pure snapshot");
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 3"));
        assert!(text.contains("# TYPE g gauge"));
        assert!(text.contains("lat_ms_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_ms_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_ms_sum 6007"));
        assert!(text.contains("lat_ms_count 2"));
        // A clone shares state.
        let clone = r.clone();
        clone.inc("a_total");
        assert_eq!(r.counter("a_total"), 4);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let r = MetricsRegistry::new();
        r.add("requests_total{route=\"search\"}", 5);
        r.observe_ms("svc_ms{conn=\"1\"}", 42);
        let parsed = parse_exposition(&r.render()).expect("render parses");
        assert_eq!(parsed["requests_total{route=\"search\"}"], 5.0);
        assert_eq!(parsed["svc_ms_bucket{conn=\"1\",le=\"50\"}"], 1.0);
        assert_eq!(parsed["svc_ms_sum{conn=\"1\"}"], 42.0);
        assert_eq!(parsed["svc_ms_count{conn=\"1\"}"], 1.0);
        assert!(parse_exposition("no-trailing-value").is_err());
        assert!(parse_exposition("name not-a-number").is_err());
    }

    #[test]
    fn metrics_sink_aggregates_wire_splits() {
        let r = MetricsRegistry::new();
        let mut sink = MetricsSink::new(r.clone());
        sink.observe(&wire_complete(1, 100, 30, 10));
        sink.observe(&TraceEvent {
            kind: "retry".into(),
            detail: "backoff".into(),
            conn: 1,
            dur_ms: 25,
            ..TraceEvent::default()
        });
        sink.observe(&TraceEvent {
            kind: "cache".into(),
            detail: "hit".into(),
            ..TraceEvent::default()
        });
        let mut fork = sink.fork();
        fork.observe(&wire_complete(2, 200, 5, 0));
        sink.merge(fork);
        let text = r.render();
        assert!(text.contains("hds_wire_service_ms_count 2"), "{text}");
        assert!(text.contains("hds_wire_queue_ms_sum 10"));
        assert!(text.contains("hds_backoff_ms_sum 25"));
        assert_eq!(r.counter("hds_cache_hits_total"), 1);
        assert_eq!(
            r.counter("hds_trace_events_total{kind=\"wire\",detail=\"complete\"}"),
            2
        );
    }
}
