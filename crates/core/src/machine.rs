//! [`WalkMachine`]: the HIDDEN-DB-SAMPLER walk as a resumable state
//! machine.
//!
//! [`HdsSampler`](crate::hds::HdsSampler) couples the walk logic to a
//! synchronous [`QueryExecutor`](crate::executor::QueryExecutor): every
//! drill-down step *calls* `classify` and blocks until the site answers.
//! That binds one in-flight request to one call stack — and therefore one
//! OS thread per walker, which is exactly the wrong currency for a scraper
//! whose cost model is round trips, not CPU.
//!
//! The machine inverts the control flow. It never touches an executor;
//! instead [`WalkMachine::step`] / [`WalkMachine::resume`] *yield* what the
//! walk needs next:
//!
//! * [`WalkStep::NeedCount`] — the machine is blocked on the classification
//!   of one query. The caller obtains it however it likes (a blocking
//!   executor, a history-cache hit, a pipelined wire completion harvested
//!   much later) and feeds it back through [`WalkMachine::resume`].
//! * [`WalkStep::Sample`] — a sample was accepted; the machine is reset and
//!   ready for the next walk.
//! * [`WalkStep::Failed`] — the walk cannot continue (budget, walk limit,
//!   empty scope, transport failure); also a reset.
//!
//! One thread can interleave hundreds of machines, parking each one while
//! its query is on the wire — the cooperative driver in `hdsampler-webform`
//! does exactly that. `HdsSampler` itself is now a thin synchronous loop
//! over this machine, so the two execution styles cannot drift apart: they
//! are the same algorithm consuming the same RNG stream in the same order,
//! and a machine fed by any semantically-correct answer source produces
//! the *identical* sample sequence for a given seed.

use hdsampler_model::{AttrId, ConjunctiveQuery, InterfaceError, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::acceptance::acceptance_probability;
use crate::config::SamplerConfig;
use crate::executor::Classified;
use crate::sample::{Sample, SampleMeta, SamplerError};
use crate::stats::SamplerStats;
use crate::walk::{domain_product, drill_step, resolve_drill_attrs, DrillStep, WalkOutcome};

/// What a [`WalkMachine`] needs (or produced) after one step.
#[derive(Debug)]
pub enum WalkStep {
    /// The machine is blocked on the classification of this query; feed
    /// the answer back via [`WalkMachine::resume`]. (The name follows the
    /// paper's vocabulary: the walk asks the interface how many tuples a
    /// query selects — empty, valid-with-rows, or more-than-k.)
    NeedCount(ConjunctiveQuery),
    /// A sample was accepted. The machine has reset and the next
    /// [`WalkMachine::step`] begins a fresh walk.
    Sample(Sample),
    /// The walk cannot continue. The machine has reset; whether retrying
    /// is sensible depends on the error (a walk limit may clear, an empty
    /// scope never will).
    Failed(SamplerError),
}

/// Progress of the current walk.
#[derive(Debug)]
enum State {
    /// No walk in progress; `step` starts one.
    Fresh { walks_this_sample: u64 },
    /// Blocked on the classification of `query` at `depth`.
    Awaiting {
        walks_this_sample: u64,
        query: ConjunctiveQuery,
        order: Vec<AttrId>,
        depth: usize,
        branch_product: f64,
    },
}

/// The HIDDEN-DB-SAMPLER walk + acceptance logic, decoupled from any
/// executor (see the module docs).
#[derive(Debug)]
pub struct WalkMachine {
    schema: Schema,
    cfg: SamplerConfig,
    drill: Vec<AttrId>,
    b_product: f64,
    c_factor: f64,
    rng: StdRng,
    stats: SamplerStats,
    state: State,
}

impl WalkMachine {
    /// Build a machine for a form exposing `schema`.
    ///
    /// # Errors
    /// [`SamplerError::Config`] on invalid scope/drill configuration.
    pub fn new(schema: &Schema, cfg: SamplerConfig) -> Result<Self, SamplerError> {
        cfg.scope
            .validate(schema)
            .map_err(|e| SamplerError::Config(e.to_string()))?;
        let drill = resolve_drill_attrs(schema, &cfg.scope, cfg.drill_attrs.as_deref())?;
        let b_product = domain_product(schema, &drill);
        let c_factor = cfg.acceptance.resolve_c(b_product);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Ok(WalkMachine {
            schema: schema.clone(),
            cfg,
            drill,
            b_product,
            c_factor,
            rng,
            stats: SamplerStats::default(),
            state: State::Fresh {
                walks_this_sample: 0,
            },
        })
    }

    /// The resolved scaling factor `C`.
    pub fn c_factor(&self) -> f64 {
        self.c_factor
    }

    /// The domain product `B` over the drillable attributes.
    pub fn domain_product(&self) -> f64 {
        self.b_product
    }

    /// The drillable attributes in schema order.
    pub fn drill_attrs(&self) -> &[AttrId] {
        &self.drill
    }

    /// Sampler-local counters (walks, dead ends, accepted, …). The
    /// executor-view counters (`requests`, `queries_issued`) stay zero —
    /// the machine never talks to an executor; whoever answers its
    /// [`WalkStep::NeedCount`]s owns those figures.
    pub fn stats(&self) -> SamplerStats {
        self.stats
    }

    /// Whether the machine is parked on a [`WalkStep::NeedCount`].
    pub fn is_awaiting(&self) -> bool {
        matches!(self.state, State::Awaiting { .. })
    }

    /// Advance until the machine blocks or produces.
    ///
    /// Fresh machines (and machines that just emitted a
    /// [`WalkStep::Sample`]/[`WalkStep::Failed`]) begin the next walk and
    /// return its first [`WalkStep::NeedCount`] (or fail immediately, e.g.
    /// on a zero walk limit). A machine already blocked re-yields the same
    /// pending query, so `step` is safe to call without tracking state.
    pub fn step(&mut self) -> WalkStep {
        match &self.state {
            State::Awaiting { query, .. } => WalkStep::NeedCount(query.clone()),
            State::Fresh { walks_this_sample } => {
                let walks = *walks_this_sample;
                self.begin_walk(walks)
            }
        }
    }

    /// Feed the answer to the pending [`WalkStep::NeedCount`] and advance.
    ///
    /// The machine itself never retries: transient-failure handling
    /// (backoff on `Throttled`/5xx, see the webform drivers) lives in
    /// whoever answers the `NeedCount`. An error fed here — e.g. a
    /// [`InterfaceError::Throttled`] whose retry budget the driver has
    /// exhausted — terminally fails the walk as
    /// [`WalkStep::Failed`]`(`[`SamplerError::Interface`]`)`.
    ///
    /// # Panics
    /// If the machine is not blocked on a query (misuse: `resume` without
    /// a preceding `NeedCount`).
    pub fn resume(&mut self, answer: Result<Classified, InterfaceError>) -> WalkStep {
        let State::Awaiting {
            walks_this_sample,
            query,
            order,
            depth,
            branch_product,
        } = std::mem::replace(
            &mut self.state,
            State::Fresh {
                walks_this_sample: 0,
            },
        )
        else {
            panic!("WalkMachine::resume without a pending NeedCount");
        };

        let classified = match answer {
            Ok(c) => c,
            Err(e) => return self.emit_failure(SamplerError::from(e)),
        };

        // One shared transition (`walk::drill_step`) serves this machine
        // and the synchronous `random_walk` alike — the walk logic exists
        // exactly once.
        let step = drill_step(
            &self.schema,
            &classified,
            &query,
            &order,
            depth,
            branch_product,
            &mut self.rng,
        );
        match step {
            DrillStep::Outcome(WalkOutcome::EmptyScope) => {
                self.emit_failure(SamplerError::EmptyScope)
            }
            DrillStep::Outcome(WalkOutcome::DeadEnd { .. }) => {
                self.stats.dead_ends += 1;
                self.begin_walk(walks_this_sample)
            }
            DrillStep::Outcome(WalkOutcome::LeafOverflow { .. }) => {
                self.stats.leaf_overflows += 1;
                self.begin_walk(walks_this_sample)
            }
            DrillStep::Outcome(WalkOutcome::Candidate(cand)) => {
                self.stats.candidates += 1;
                let a = acceptance_probability(
                    self.c_factor,
                    cand.branch_product,
                    cand.result_size,
                    self.b_product,
                );
                if a >= 1.0 || self.rng.gen_bool(a) {
                    self.stats.accepted += 1;
                    self.state = State::Fresh {
                        walks_this_sample: 0,
                    };
                    WalkStep::Sample(Sample {
                        row: cand.row,
                        weight: 1.0,
                        meta: SampleMeta {
                            depth: cand.depth,
                            result_size: cand.result_size,
                            acceptance: a,
                            walks: walks_this_sample,
                        },
                    })
                } else {
                    self.stats.rejected += 1;
                    self.begin_walk(walks_this_sample)
                }
            }
            DrillStep::Descend {
                query,
                branch_product,
            } => {
                let next = query.clone();
                self.state = State::Awaiting {
                    walks_this_sample,
                    query,
                    order,
                    depth: depth + 1,
                    branch_product,
                };
                WalkStep::NeedCount(next)
            }
        }
    }

    /// Start the next walk of the current sample attempt (enforcing the
    /// walk limit) and block on the scope query.
    fn begin_walk(&mut self, walks_this_sample: u64) -> WalkStep {
        if walks_this_sample >= self.cfg.max_walks_per_sample {
            return self.emit_failure(SamplerError::WalkLimit {
                walks: walks_this_sample,
            });
        }
        self.stats.walks += 1;
        let order = self.cfg.order.make_order(&self.drill, &mut self.rng);
        let query = self.cfg.scope.clone();
        let first = query.clone();
        self.state = State::Awaiting {
            walks_this_sample: walks_this_sample + 1,
            query,
            order,
            depth: 0,
            branch_product: 1.0,
        };
        WalkStep::NeedCount(first)
    }

    /// Reset and report a failure.
    fn emit_failure(&mut self, err: SamplerError) -> WalkStep {
        self.state = State::Fresh {
            walks_this_sample: 0,
        };
        WalkStep::Failed(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{DirectExecutor, QueryExecutor};
    use crate::hds::HdsSampler;
    use crate::sample::Sampler;
    use hdsampler_model::Classification;
    use hdsampler_workload::figure1_db;

    /// Drive a machine synchronously against an executor — the reference
    /// loop `HdsSampler` also uses.
    fn drive_one<E: QueryExecutor>(m: &mut WalkMachine, exec: &E) -> Result<Sample, SamplerError> {
        let mut step = m.step();
        loop {
            match step {
                WalkStep::NeedCount(q) => step = m.resume(exec.classify(&q)),
                WalkStep::Sample(s) => return Ok(s),
                WalkStep::Failed(e) => return Err(e),
            }
        }
    }

    #[test]
    fn machine_replays_hds_sampler_exactly() {
        // Same seed, same executor semantics ⇒ byte-identical sample
        // sequence and identical local counters.
        let db = figure1_db(1);
        let cfg = SamplerConfig::seeded(42);
        let mut sampler = HdsSampler::new(DirectExecutor::new(&db), cfg.clone()).unwrap();
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let mut machine = WalkMachine::new(&schema, cfg).unwrap();
        let exec = DirectExecutor::new(&db);

        for _ in 0..50 {
            let a = sampler.next_sample().unwrap();
            let b = drive_one(&mut machine, &exec).unwrap();
            assert_eq!(a, b);
        }
        let s = sampler.stats();
        let m = machine.stats();
        assert_eq!(
            (s.walks, s.dead_ends, s.accepted),
            (m.walks, m.dead_ends, m.accepted)
        );
        assert_eq!((s.candidates, s.rejected), (m.candidates, m.rejected));
    }

    #[test]
    fn step_is_idempotent_while_blocked() {
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let mut m = WalkMachine::new(&schema, SamplerConfig::seeded(1)).unwrap();
        let WalkStep::NeedCount(q1) = m.step() else {
            panic!("fresh machine must ask for the scope query");
        };
        assert!(m.is_awaiting());
        let WalkStep::NeedCount(q2) = m.step() else {
            panic!("blocked machine must re-yield its pending query");
        };
        assert_eq!(q1, q2);
        // Only one walk was started despite two steps.
        assert_eq!(m.stats().walks, 1);
    }

    #[test]
    fn walk_limit_and_reset() {
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let mut m = WalkMachine::new(&schema, SamplerConfig::seeded(3).with_max_walks(0)).unwrap();
        match m.step() {
            WalkStep::Failed(SamplerError::WalkLimit { walks: 0 }) => {}
            other => panic!("expected immediate walk limit, got {other:?}"),
        }
        // The machine reset: the next step hits the limit again, exactly
        // like a fresh `next_sample` call.
        assert!(matches!(
            m.step(),
            WalkStep::Failed(SamplerError::WalkLimit { walks: 0 })
        ));
    }

    #[test]
    fn empty_scope_fails_and_resets() {
        use hdsampler_model::{AttrId, ConjunctiveQuery};
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let scope = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 0)]).unwrap();
        let cfg = SamplerConfig::seeded(1).with_scope(scope);
        let mut m = WalkMachine::new(&schema, cfg).unwrap();
        let exec = DirectExecutor::new(&db);
        assert_eq!(drive_one(&mut m, &exec), Err(SamplerError::EmptyScope));
        assert_eq!(drive_one(&mut m, &exec), Err(SamplerError::EmptyScope));
    }

    #[test]
    fn transport_errors_surface_as_failures() {
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let mut m = WalkMachine::new(&schema, SamplerConfig::seeded(5)).unwrap();
        let WalkStep::NeedCount(_) = m.step() else {
            panic!("must block on the scope query");
        };
        let step = m.resume(Err(InterfaceError::BudgetExhausted { issued: 7 }));
        assert!(matches!(
            step,
            WalkStep::Failed(SamplerError::BudgetExhausted { issued: 7 })
        ));
        assert!(!m.is_awaiting(), "failure resets the machine");
    }

    #[test]
    fn exhausted_retry_throttle_fails_the_walk() {
        // The retrying drivers only feed a Throttled error to the machine
        // once their retry budget is spent — at which point it must be
        // terminal, not silently swallowed.
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let mut m = WalkMachine::new(&schema, SamplerConfig::seeded(6)).unwrap();
        let WalkStep::NeedCount(_) = m.step() else {
            panic!("must block on the scope query");
        };
        let step = m.resume(Err(InterfaceError::Throttled {
            retry_after_ms: 250,
        }));
        assert!(matches!(
            step,
            WalkStep::Failed(SamplerError::Interface(InterfaceError::Throttled {
                retry_after_ms: 250
            }))
        ));
        assert!(!m.is_awaiting(), "failure resets the machine");
    }

    #[test]
    #[should_panic(expected = "without a pending NeedCount")]
    fn resume_without_pending_query_panics() {
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let mut m = WalkMachine::new(&schema, SamplerConfig::seeded(1)).unwrap();
        let _ = m.resume(Ok(Classified {
            class: Classification::Empty,
            rows: None,
        }));
    }

    #[test]
    fn invalid_config_rejected() {
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db).clone();
        let cfg = SamplerConfig::seeded(1).with_drill_attrs(["bogus"]);
        assert!(matches!(
            WalkMachine::new(&schema, cfg),
            Err(SamplerError::Config(_))
        ));
    }
}
