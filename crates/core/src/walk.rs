//! The random drill-down walk (paper §2).
//!
//! Starting from the (possibly user-pinned) scope query, the walk adds one
//! randomly-valued predicate per level of the query tree until the query
//! stops overflowing:
//!
//! * **overflow** → descend another level;
//! * **empty** → dead end, the walk restarts;
//! * **valid** (1..=k rows) → pick one returned row uniformly; this is a
//!   *candidate* for the Sample Processor, together with the quantities the
//!   acceptance formula needs (depth, branch product, result size).
//!
//! If every drillable attribute is bound and the query still overflows, the
//! walk has found a mass of more than `k` tuples that the interface cannot
//! tell apart — those tuples are unreachable by drill-down sampling
//! ([`WalkOutcome::LeafOverflow`]); the data-shape experiment measures this
//! "invisible mass".

use hdsampler_model::{AttrId, Classification, ConjunctiveQuery, InterfaceError, Row, Schema};
use rand::Rng;

use crate::executor::{Classified, QueryExecutor};

/// A candidate sample produced by a successful walk.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The uniformly picked row of the terminal valid node.
    pub row: Row,
    /// Number of predicates added on top of the scope (tree depth `d`).
    pub depth: usize,
    /// Result size `j` of the terminal node.
    pub result_size: usize,
    /// `∏_{i ≤ d} |Dom(π_i)|` along the walked path.
    pub branch_product: f64,
}

/// Terminal state of one walk.
#[derive(Debug, Clone)]
pub enum WalkOutcome {
    /// Reached a valid node and picked a row.
    Candidate(Candidate),
    /// Hit an empty node at the given depth.
    DeadEnd {
        /// Depth at which the walk died.
        depth: usize,
    },
    /// Exhausted all attributes while still overflowing.
    LeafOverflow {
        /// Depth reached (= number of drillable attributes).
        depth: usize,
    },
    /// The scope query itself selects nothing — no walk can succeed.
    EmptyScope,
}

/// What one classification does to a walk in progress.
///
/// This is THE drill-down transition (paper §2): [`random_walk`] folds it
/// over a blocking executor, and
/// [`WalkMachine`](crate::machine::WalkMachine) applies it once per
/// resumption — both consume the RNG identically because both call this
/// single implementation.
#[derive(Debug)]
pub(crate) enum DrillStep {
    /// The walk terminated with an outcome.
    Outcome(WalkOutcome),
    /// The node overflows and a fresh predicate was drawn: descend.
    Descend {
        /// The refined query for the next level.
        query: ConjunctiveQuery,
        /// Updated `∏ |Dom(π_i)|` along the path.
        branch_product: f64,
    },
}

/// Apply one classification to the walk state at `depth`.
pub(crate) fn drill_step<R: Rng>(
    schema: &Schema,
    resp: &Classified,
    query: &ConjunctiveQuery,
    order: &[AttrId],
    depth: usize,
    branch_product: f64,
    rng: &mut R,
) -> DrillStep {
    match resp.class {
        Classification::Empty => DrillStep::Outcome(if depth == 0 {
            WalkOutcome::EmptyScope
        } else {
            WalkOutcome::DeadEnd { depth }
        }),
        Classification::Valid => {
            let rows = resp.rows.as_ref().expect("valid responses carry rows");
            let j = rows.len();
            debug_assert!(j >= 1);
            let row = rows[rng.gen_range(0..j)].clone();
            DrillStep::Outcome(WalkOutcome::Candidate(Candidate {
                row,
                depth,
                result_size: j,
                branch_product,
            }))
        }
        Classification::Overflow => {
            if depth == order.len() {
                return DrillStep::Outcome(WalkOutcome::LeafOverflow { depth });
            }
            let attr = order[depth];
            let dom = schema.domain_size(attr);
            let value = rng.gen_range(0..dom) as u16;
            DrillStep::Descend {
                query: query
                    .refine(attr, value)
                    .expect("drill attributes are unbound by construction"),
                branch_product: branch_product * dom as f64,
            }
        }
    }
}

/// Perform one random drill-down walk.
///
/// `order` must list the drillable attributes (none of them bound by
/// `scope`), in the order this walk will constrain them.
pub fn random_walk<E: QueryExecutor, R: Rng>(
    exec: &E,
    scope: &ConjunctiveQuery,
    order: &[AttrId],
    rng: &mut R,
) -> Result<WalkOutcome, InterfaceError> {
    let schema = exec.schema();
    let mut query = scope.clone();
    let mut branch_product = 1.0f64;

    for depth in 0..=order.len() {
        let resp = exec.classify(&query)?;
        match drill_step(schema, &resp, &query, order, depth, branch_product, rng) {
            DrillStep::Outcome(outcome) => return Ok(outcome),
            DrillStep::Descend {
                query: refined,
                branch_product: b,
            } => {
                query = refined;
                branch_product = b;
            }
        }
    }
    unreachable!("the transition terminates at depth == order.len()");
}

/// Domain product `B = ∏ |Dom(a)|` over a set of drillable attributes.
pub fn domain_product(schema: &hdsampler_model::Schema, drill: &[AttrId]) -> f64 {
    drill
        .iter()
        .map(|&a| schema.domain_size(a) as f64)
        .product()
}

/// Resolve the drillable attribute set for a scope query: every schema
/// attribute not bound by the scope, optionally restricted to a named
/// subset (Figure 3's attribute selection).
pub fn resolve_drill_attrs(
    schema: &hdsampler_model::Schema,
    scope: &ConjunctiveQuery,
    restrict_to: Option<&[String]>,
) -> Result<Vec<AttrId>, crate::sample::SamplerError> {
    let mut drill = Vec::new();
    match restrict_to {
        None => {
            for id in schema.attr_ids() {
                if !scope.binds(id) {
                    drill.push(id);
                }
            }
        }
        Some(names) => {
            for name in names {
                let id = schema
                    .attr_by_name(name)
                    .map_err(|e| crate::sample::SamplerError::Config(e.to_string()))?;
                if scope.binds(id) {
                    return Err(crate::sample::SamplerError::Config(format!(
                        "attribute `{name}` is pinned by the scope and cannot be drilled"
                    )));
                }
                drill.push(id);
            }
            drill.sort_unstable();
            drill.dedup();
        }
    }
    Ok(drill)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::DirectExecutor;
    use hdsampler_workload::figure1_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attrs(n: u16) -> Vec<AttrId> {
        (0..n).map(AttrId).collect()
    }

    #[test]
    fn figure1_walk_reaches_every_tuple_with_paper_probabilities() {
        let db = figure1_db(1);
        let exec = DirectExecutor::new(&db);
        let order = attrs(3);
        let mut rng = StdRng::seed_from_u64(17);

        let n = 40_000;
        let mut by_values: std::collections::HashMap<Vec<u16>, u32> = Default::default();
        let mut dead_ends = 0u32;
        for _ in 0..n {
            match random_walk(&exec, &ConjunctiveQuery::empty(), &order, &mut rng).unwrap() {
                WalkOutcome::Candidate(c) => {
                    *by_values.entry(c.row.values.to_vec()).or_insert(0) += 1;
                }
                WalkOutcome::DeadEnd { .. } => dead_ends += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        // Paper §2 / Figure 1: reach probabilities 1/4, 1/8, 1/8, 1/2 and a
        // 0 probability of dead end on this database? No: path a1=1,a2=0 is
        // empty, giving a dead-end probability of... a1=1 (prob 1/2) is
        // VALID immediately (t4 unique), so the dead end is never reached.
        assert_eq!(dead_ends, 0, "a1=1 terminates before the empty branch");
        let freq =
            |vals: [u16; 3]| by_values.get(vals.as_slice()).copied().unwrap_or(0) as f64 / n as f64;
        assert!(
            (freq([0, 0, 1]) - 0.25).abs() < 0.01,
            "t1 {}",
            freq([0, 0, 1])
        );
        assert!(
            (freq([0, 1, 0]) - 0.125).abs() < 0.01,
            "t2 {}",
            freq([0, 1, 0])
        );
        assert!(
            (freq([0, 1, 1]) - 0.125).abs() < 0.01,
            "t3 {}",
            freq([0, 1, 1])
        );
        assert!(
            (freq([1, 1, 0]) - 0.5).abs() < 0.01,
            "t4 {}",
            freq([1, 1, 0])
        );
    }

    #[test]
    fn candidate_carries_walk_geometry() {
        let db = figure1_db(1);
        let exec = DirectExecutor::new(&db);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            if let WalkOutcome::Candidate(c) =
                random_walk(&exec, &ConjunctiveQuery::empty(), &attrs(3), &mut rng).unwrap()
            {
                assert_eq!(c.branch_product, 2f64.powi(c.depth as i32));
                assert_eq!(c.result_size, 1, "k = 1 forces singleton nodes");
                assert!(c.depth >= 1 && c.depth <= 3);
            }
        }
    }

    #[test]
    fn scope_restricts_the_walk() {
        let db = figure1_db(1);
        let exec = DirectExecutor::new(&db);
        let mut rng = StdRng::seed_from_u64(5);
        // Scope a2=1 → tuples t2, t3, t4; drill on a1, a3 only.
        let scope = ConjunctiveQuery::from_pairs([(AttrId(1), 1)]).unwrap();
        let drill = resolve_drill_attrs(exec.schema(), &scope, None).unwrap();
        assert_eq!(drill, vec![AttrId(0), AttrId(2)]);
        for _ in 0..300 {
            if let WalkOutcome::Candidate(c) = random_walk(&exec, &scope, &drill, &mut rng).unwrap()
            {
                assert_eq!(c.row.values[1], 1, "sampled row must satisfy the scope");
            }
        }
    }

    #[test]
    fn empty_scope_detected_at_depth_zero() {
        let db = figure1_db(1);
        let exec = DirectExecutor::new(&db);
        let mut rng = StdRng::seed_from_u64(6);
        // a1=1 ∧ a2=0 selects nothing.
        let scope = ConjunctiveQuery::from_pairs([(AttrId(0), 1), (AttrId(1), 0)]).unwrap();
        let out = random_walk(&exec, &scope, &[AttrId(2)], &mut rng).unwrap();
        assert!(matches!(out, WalkOutcome::EmptyScope));
    }

    #[test]
    fn leaf_overflow_on_indistinguishable_mass() {
        // 5 identical tuples behind k = 2: every walk bottoms out still
        // overflowing.
        use hdsampler_hidden_db::HiddenDb;
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema)).result_limit(2);
        for _ in 0..5 {
            b.push(&Tuple::new(&schema, vec![1], vec![]).unwrap())
                .unwrap();
        }
        let db = b.finish();
        let exec = DirectExecutor::new(&db);
        let mut rng = StdRng::seed_from_u64(7);
        let mut saw_leaf_overflow = false;
        for _ in 0..20 {
            match random_walk(&exec, &ConjunctiveQuery::empty(), &[AttrId(0)], &mut rng).unwrap() {
                WalkOutcome::LeafOverflow { depth } => {
                    assert_eq!(depth, 1);
                    saw_leaf_overflow = true;
                }
                WalkOutcome::DeadEnd { depth } => assert_eq!(depth, 1),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(saw_leaf_overflow);
    }

    #[test]
    fn resolve_drill_attrs_validates() {
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db);
        let scope = ConjunctiveQuery::from_pairs([(AttrId(0), 1)]).unwrap();
        let names = vec!["a1".to_string()];
        assert!(matches!(
            resolve_drill_attrs(schema, &scope, Some(&names)),
            Err(crate::sample::SamplerError::Config(_))
        ));
        let names = vec!["nope".to_string()];
        assert!(resolve_drill_attrs(schema, &ConjunctiveQuery::empty(), Some(&names)).is_err());
        let names = vec!["a2".to_string(), "a3".to_string(), "a2".to_string()];
        let drill = resolve_drill_attrs(schema, &ConjunctiveQuery::empty(), Some(&names)).unwrap();
        assert_eq!(drill, vec![AttrId(1), AttrId(2)], "deduplicated and sorted");
    }

    #[test]
    fn domain_product_multiplies() {
        let db = figure1_db(1);
        let schema = hdsampler_model::FormInterface::schema(&db);
        assert_eq!(domain_product(schema, &attrs(3)), 8.0);
        assert_eq!(domain_product(schema, &[]), 1.0);
    }
}
