//! [`QueryExecutor`]: the sampler-side view of a form interface.
//!
//! Samplers never call [`FormInterface`] directly; they go through an
//! executor, which (a) strips responses down to what a sampler may legally
//! use — full row lists only for *valid* queries, classification only for
//! overflow/empty — and (b) optionally routes through the history cache
//! ([`CachingExecutor`](crate::history::CachingExecutor)) so repeated or
//! inferable queries cost nothing (§3.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hdsampler_model::{
    Classification, ConjunctiveQuery, FormInterface, InterfaceError, QueryResponse, Row, Schema,
};

/// A response reduced to sampler-legal information.
#[derive(Debug, Clone)]
pub struct Classified {
    /// Empty / valid / overflow.
    pub class: Classification,
    /// The complete result rows — present **only** for valid queries. Rows
    /// of overflowing queries are deliberately discarded: they are top-k
    /// under a non-random ranking and would bias any sample (§2).
    pub rows: Option<Arc<[Row]>>,
}

impl Classified {
    /// Number of rows for valid responses (the `j` in the acceptance
    /// formula), 0 otherwise.
    pub fn result_size(&self) -> usize {
        self.rows.as_ref().map_or(0, |r| r.len())
    }

    /// Reduce a full interface response to sampler-legal information:
    /// rows are kept only when the response is valid (top-k rows of an
    /// overflowing query would bias any sample, §2).
    pub fn from_response(resp: QueryResponse) -> Self {
        let class = resp.classification();
        let rows = match class {
            Classification::Valid => Some(Arc::from(resp.rows)),
            _ => None,
        };
        Classified { class, rows }
    }
}

/// The sampler-side query service.
pub trait QueryExecutor {
    /// Classify a query, returning full rows when (and only when) valid.
    fn classify(&self, query: &ConjunctiveQuery) -> Result<Classified, InterfaceError>;

    /// The result count of a query (exact or site-noisy), when the site
    /// reports counts.
    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError>;

    /// The form's schema.
    fn schema(&self) -> &Schema;

    /// The top-k limit.
    fn result_limit(&self) -> usize;

    /// Whether [`count`](QueryExecutor::count) can succeed.
    fn supports_count(&self) -> bool;

    /// Queries actually charged at the interface.
    fn queries_issued(&self) -> u64;

    /// Logical requests made by samplers (≥ `queries_issued` when a cache
    /// absorbs some of them).
    fn requests(&self) -> u64;
}

/// Pass-through executor: every request hits the interface.
#[derive(Debug)]
pub struct DirectExecutor<F> {
    interface: F,
    requests: AtomicU64,
    /// Interface charges that predate this executor, so several samplers
    /// run sequentially against one site each report only their own cost.
    charge_baseline: u64,
}

impl<F: FormInterface> DirectExecutor<F> {
    /// Wrap an interface.
    pub fn new(interface: F) -> Self {
        let charge_baseline = interface.queries_issued();
        DirectExecutor {
            interface,
            requests: AtomicU64::new(0),
            charge_baseline,
        }
    }

    /// The wrapped interface.
    pub fn interface(&self) -> &F {
        &self.interface
    }
}

impl<F: FormInterface> QueryExecutor for DirectExecutor<F> {
    fn classify(&self, query: &ConjunctiveQuery) -> Result<Classified, InterfaceError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        Ok(Classified::from_response(self.interface.execute(query)?))
    }

    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.interface.count(query)
    }

    fn schema(&self) -> &Schema {
        self.interface.schema()
    }

    fn result_limit(&self) -> usize {
        self.interface.result_limit()
    }

    fn supports_count(&self) -> bool {
        self.interface.supports_count()
    }

    fn queries_issued(&self) -> u64 {
        self.interface
            .queries_issued()
            .saturating_sub(self.charge_baseline)
    }

    fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

impl<E: QueryExecutor + ?Sized> QueryExecutor for &E {
    fn classify(&self, query: &ConjunctiveQuery) -> Result<Classified, InterfaceError> {
        (**self).classify(query)
    }
    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        (**self).count(query)
    }
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn result_limit(&self) -> usize {
        (**self).result_limit()
    }
    fn supports_count(&self) -> bool {
        (**self).supports_count()
    }
    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }
    fn requests(&self) -> u64 {
        (**self).requests()
    }
}

impl<E: QueryExecutor + ?Sized> QueryExecutor for Arc<E> {
    fn classify(&self, query: &ConjunctiveQuery) -> Result<Classified, InterfaceError> {
        (**self).classify(query)
    }
    fn count(&self, query: &ConjunctiveQuery) -> Result<u64, InterfaceError> {
        (**self).count(query)
    }
    fn schema(&self) -> &Schema {
        (**self).schema()
    }
    fn result_limit(&self) -> usize {
        (**self).result_limit()
    }
    fn supports_count(&self) -> bool {
        (**self).supports_count()
    }
    fn queries_issued(&self) -> u64 {
        (**self).queries_issued()
    }
    fn requests(&self) -> u64 {
        (**self).requests()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsampler_hidden_db::HiddenDb;
    use hdsampler_model::{AttrId, Attribute, SchemaBuilder, Tuple};
    use std::sync::Arc as StdArc;

    fn tiny_db(k: usize) -> HiddenDb {
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(StdArc::clone(&schema)).result_limit(k);
        for vals in [[0u16, 0], [0, 1], [1, 0], [1, 1]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn overflow_rows_are_withheld() {
        let db = tiny_db(2);
        let exec = DirectExecutor::new(&db);
        let c = exec.classify(&ConjunctiveQuery::empty()).unwrap();
        assert_eq!(c.class, Classification::Overflow);
        assert!(c.rows.is_none(), "top-k rows must not leak to samplers");
        assert_eq!(c.result_size(), 0);
    }

    #[test]
    fn valid_rows_are_complete() {
        let db = tiny_db(2);
        let exec = DirectExecutor::new(&db);
        let q = ConjunctiveQuery::from_pairs([(AttrId(0), 0)]).unwrap();
        let c = exec.classify(&q).unwrap();
        assert_eq!(c.class, Classification::Valid);
        assert_eq!(c.result_size(), 2);
    }

    #[test]
    fn charges_and_requests_align_without_cache() {
        let db = tiny_db(2);
        let exec = DirectExecutor::new(&db);
        exec.classify(&ConjunctiveQuery::empty()).unwrap();
        exec.classify(&ConjunctiveQuery::empty()).unwrap();
        assert_eq!(exec.requests(), 2);
        assert_eq!(exec.queries_issued(), 2);
    }
}
