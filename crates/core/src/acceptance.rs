//! The Sample Processor's acceptance–rejection rule (§3.3) and the
//! efficiency ↔ skew slider (§3.1).
//!
//! ## The mathematics
//!
//! A drill-down walk with attribute order `π` stops at the first
//! non-overflowing node; if that node sits at depth `d`, holds `j ≤ k`
//! tuples, and one of them is picked uniformly, the per-walk probability of
//! selecting tuple `t` is
//!
//! ```text
//! p(t) = (∏_{i ≤ d} 1 / |Dom(π_i)|) · 1/j .
//! ```
//!
//! Accepting the candidate with probability
//!
//! ```text
//! a(t) = min(1, C · j · ∏_{i ≤ d} |Dom(π_i)| / B),        B = ∏_i |Dom(π_i)|
//! ```
//!
//! gives output probability `p(t)·a(t) = min(p(t), C/B)`: **uniform** at
//! `C = 1` (every tuple emitted with probability `1/B` per walk — slow but
//! skewless), progressively clipped for the hardest-to-reach tuples as `C`
//! grows (fast but skewed). That is precisely the trade-off the demo's
//! slider exposes: "one end having the highest efficiency and the other
//! having the lowest skew" (§3.1).

use serde::{Deserialize, Serialize};

/// Acceptance policy of the Sample Processor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AcceptancePolicy {
    /// `C = 1`: provably uniform output, maximum rejections.
    Uniform,
    /// Explicit scaling factor `C ≥ 1`.
    ScaleC {
        /// The scaling factor.
        c: f64,
    },
    /// The demo slider: position `0` maps to `C = 1` (lowest skew),
    /// position `1` to `C = B` (every candidate accepted — raw walk
    /// distribution, highest efficiency), log-interpolated in between
    /// (`C = B^position`).
    Slider {
        /// Slider position in `[0, 1]`.
        position: f64,
    },
    /// Accept every candidate (equivalent to slider = 1).
    AcceptAll,
}

impl AcceptancePolicy {
    /// Resolve the policy to a concrete scaling factor for a query tree
    /// with domain product `b` (over the drillable attributes).
    ///
    /// # Panics
    /// Panics on `C < 1` or a slider position outside `[0, 1]` — these are
    /// configuration errors, caught at sampler construction.
    pub fn resolve_c(&self, b: f64) -> f64 {
        match *self {
            AcceptancePolicy::Uniform => 1.0,
            AcceptancePolicy::ScaleC { c } => {
                assert!(c >= 1.0, "scaling factor C must be ≥ 1, got {c}");
                c
            }
            AcceptancePolicy::Slider { position } => {
                assert!(
                    (0.0..=1.0).contains(&position),
                    "slider position must lie in [0,1], got {position}"
                );
                b.powf(position)
            }
            AcceptancePolicy::AcceptAll => f64::INFINITY,
        }
    }
}

/// Acceptance probability for a candidate picked at a node with
/// `branch_product = ∏_{i ≤ d} |Dom(π_i)|` and `j = result_size`, on a tree
/// with total domain product `b`, under scaling factor `c`.
///
/// Always in `(0, 1]` for well-formed inputs.
#[inline]
pub fn acceptance_probability(c: f64, branch_product: f64, result_size: usize, b: f64) -> f64 {
    debug_assert!(
        result_size >= 1,
        "candidates come from non-empty valid nodes"
    );
    debug_assert!(branch_product >= 1.0 && b >= branch_product);
    let raw = c * result_size as f64 * branch_product / b;
    raw.min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_resolves_to_one() {
        assert_eq!(AcceptancePolicy::Uniform.resolve_c(1024.0), 1.0);
    }

    #[test]
    fn slider_endpoints() {
        assert_eq!(
            AcceptancePolicy::Slider { position: 0.0 }.resolve_c(1024.0),
            1.0
        );
        assert_eq!(
            AcceptancePolicy::Slider { position: 1.0 }.resolve_c(1024.0),
            1024.0
        );
        let mid = AcceptancePolicy::Slider { position: 0.5 }.resolve_c(1024.0);
        assert!((mid - 32.0).abs() < 1e-9, "log-scale midpoint, got {mid}");
    }

    #[test]
    fn accept_all_is_infinite_c() {
        let c = AcceptancePolicy::AcceptAll.resolve_c(1e12);
        assert_eq!(acceptance_probability(c, 1.0, 1, 1e12), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn sub_one_c_rejected() {
        AcceptancePolicy::ScaleC { c: 0.5 }.resolve_c(16.0);
    }

    #[test]
    #[should_panic(expected = "slider position")]
    fn out_of_range_slider_rejected() {
        AcceptancePolicy::Slider { position: 1.5 }.resolve_c(16.0);
    }

    #[test]
    fn figure1_acceptance_probabilities() {
        // Paper Figure 1 database, k = 1, C = 1, B = 2³ = 8.
        // t4: depth 1 (branch 2), j = 1 → a = 2/8 = 1/4.
        // t1: depth 2 (branch 4), j = 1 → a = 4/8 = 1/2.
        // t2, t3: depth 3 (branch 8), j = 1 → a = 1.
        assert_eq!(acceptance_probability(1.0, 2.0, 1, 8.0), 0.25);
        assert_eq!(acceptance_probability(1.0, 4.0, 1, 8.0), 0.5);
        assert_eq!(acceptance_probability(1.0, 8.0, 1, 8.0), 1.0);
        // Output probability = reach × acceptance is uniform: 1/2·1/4 =
        // 1/4·1/2 = 1/8·1 = 1/8. ✓ (verified empirically in exp_fig1)
    }

    #[test]
    fn larger_c_never_decreases_acceptance() {
        for &(branch, j, b) in &[(2.0, 1, 64.0), (8.0, 3, 64.0), (64.0, 1, 64.0)] {
            let mut last = 0.0;
            for c in [1.0, 2.0, 4.0, 8.0, 64.0] {
                let a = acceptance_probability(c, branch, j, b);
                assert!(a >= last);
                assert!(a <= 1.0);
                last = a;
            }
        }
    }

    #[test]
    fn deeper_nodes_accept_more_under_uniform() {
        // Uniformity correction: harder-to-reach (deeper) candidates must be
        // kept with higher probability.
        let shallow = acceptance_probability(1.0, 2.0, 1, 256.0);
        let deep = acceptance_probability(1.0, 128.0, 1, 256.0);
        assert!(deep > shallow);
    }
}
