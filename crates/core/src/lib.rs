//! # hdsampler-core
//!
//! The HDSampler engine (paper §3): the **Sample Generator** — random
//! drill-down walks over the query tree of a conjunctive form interface —
//! and the **Sample Processor** — acceptance–rejection refinement trading
//! efficiency against skew — plus the two reference samplers the paper
//! discusses (BRUTE-FORCE-SAMPLER and the count-weighted sampler of
//! ref [2]) and the query-history cache with containment inference (§3.2).
//!
//! ## Module map
//!
//! | paper concept | module |
//! |---|---|
//! | random drill-down (§2) | [`walk`] |
//! | resumable walk state machine | [`machine`] |
//! | attribute-order scrambling (ref [1]) | [`order`] |
//! | acceptance–rejection + slider (§3.1, §3.3) | [`acceptance`] |
//! | HIDDEN-DB-SAMPLER | [`hds`] |
//! | BRUTE-FORCE-SAMPLER (§3.4) | [`brute`] |
//! | count-weighted sampler (ref [2]) | [`count`] |
//! | query-history savings (§3.2, ref [2]) | [`history`] |
//! | incremental sessions + kill switch (§3.4) | [`session`] |
//!
//! All samplers speak to the hidden database exclusively through
//! [`QueryExecutor`], which either forwards to a
//! [`FormInterface`](hdsampler_model::FormInterface) directly or routes
//! through the inference cache.

pub mod acceptance;
pub mod brute;
pub mod config;
pub mod count;
pub mod executor;
pub mod hds;
pub mod history;
pub mod l2;
pub mod machine;
pub mod order;
pub mod sample;
pub mod session;
pub mod sink;
pub mod stats;
pub mod trace;
pub mod walk;

pub use acceptance::AcceptancePolicy;
pub use brute::BruteForceSampler;
pub use config::SamplerConfig;
pub use count::CountWalkSampler;
pub use executor::{Classified, DirectExecutor, QueryExecutor};
pub use hds::HdsSampler;
pub use history::{
    autotuned_shard_count, CachingExecutor, HistoryHit, HistoryStats, HitTier,
    DEFAULT_CACHE_CAPACITY, MAX_AUTOTUNED_SHARDS,
};
pub use l2::{
    CompactReport, FactRecord, L2Config, L2DirStats, L2Log, SiteFingerprint, FINGERPRINT_VERSION,
};
pub use machine::{WalkMachine, WalkStep};
pub use order::OrderStrategy;
pub use sample::{Sample, SampleMeta, SampleSet, Sampler, SamplerError};
pub use session::{SamplingSession, SessionEvent, SessionOutcome, StopReason};
pub use sink::{merged, observe_all, NullSink, SampleEvent, SampleSetSink, SampleSink};
pub use stats::SamplerStats;
pub use trace::{
    merged_trace, parse_exposition, trace_all, MetricsRegistry, MetricsSink, NullTraceSink,
    SampleTraceSink, TraceEvent, TraceLog, TraceSink, Tracer, LATENCY_BUCKETS_MS,
};
