//! Incremental sampling sessions (§3.4).
//!
//! "The entire system works in an incremental fashion where the Sample
//! Generator, Sample Processor and Output module generate samples and
//! updates the final sample set and histograms till the desired number of
//! samples are obtained. A kill switch has been included to facilitate
//! stopping the sampling procedure in case the user is satisfied with the
//! samples extracted thus far."
//!
//! [`SamplingSession`] drives any [`Sampler`] toward a target count,
//! surfacing progress through an event callback (the AJAX live-update path
//! of the original demo) and honouring a shared kill switch. A parallel
//! variant ([`SamplingSession::run_parallel`]) fans walkers out over
//! threads that share one interface, budget and history cache.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::sample::{Sample, SampleSet, Sampler, SamplerError};
use crate::sink::{observe_all, SampleEvent, SampleSink};
use crate::stats::SamplerStats;

/// Why a session ended.
#[derive(Debug, Clone, PartialEq)]
pub enum StopReason {
    /// The requested number of samples was collected.
    TargetReached,
    /// The kill switch was flipped.
    Killed,
    /// The site's query budget ran out.
    BudgetExhausted,
    /// The sampler failed for another reason.
    Failed(SamplerError),
}

/// Progress notifications emitted while a session runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// A sample was accepted (carries the sample itself and the running
    /// total — the AJAX live-update payload).
    SampleAccepted {
        /// The accepted sample.
        sample: Sample,
        /// Samples collected so far (including this one).
        collected: usize,
        /// Target count.
        target: usize,
    },
    /// The session stopped.
    Stopped(StopReason),
}

/// Result of a completed session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The collected samples (possibly fewer than the target).
    pub samples: SampleSet,
    /// Why the session ended.
    pub reason: StopReason,
    /// Final sampler statistics.
    pub stats: SamplerStats,
}

/// An incremental sampling run with kill switch, progress events and
/// streaming [`SampleSink`] observers.
pub struct SamplingSession {
    target: usize,
    site: usize,
    kill: Arc<AtomicBool>,
}

impl SamplingSession {
    /// Session targeting `target` samples.
    pub fn new(target: usize) -> Self {
        SamplingSession {
            target,
            site: 0,
            kill: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Label every emitted [`SampleEvent`] with this site index (fleet
    /// drivers run one session per site; default 0).
    pub fn with_site(mut self, site: usize) -> Self {
        self.site = site;
        self
    }

    /// Handle that stops the session from another thread (the demo UI's
    /// kill switch).
    pub fn kill_switch(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.kill)
    }

    /// Drive `sampler` until the target, the kill switch, or an error.
    /// `on_event` observes progress.
    pub fn run<S: Sampler>(
        &self,
        sampler: &mut S,
        on_event: impl FnMut(&SessionEvent),
    ) -> SessionOutcome {
        self.run_observed(sampler, &mut [], on_event)
    }

    /// [`SamplingSession::run`], additionally streaming every accepted
    /// sample into `sinks` at the moment it is collected. The sinks' final
    /// state describes exactly the outcome's sample set, in order.
    pub fn run_observed<S: Sampler>(
        &self,
        sampler: &mut S,
        sinks: &mut [&mut dyn SampleSink],
        mut on_event: impl FnMut(&SessionEvent),
    ) -> SessionOutcome {
        let mut samples = SampleSet::new();
        let reason = loop {
            if samples.len() >= self.target {
                break StopReason::TargetReached;
            }
            if self.kill.load(Ordering::Relaxed) {
                break StopReason::Killed;
            }
            match sampler.next_sample() {
                Ok(s) => {
                    let collected = samples.len() + 1;
                    let stats = sampler.stats();
                    observe_all(
                        sinks,
                        &SampleEvent {
                            sample: &s,
                            site: self.site,
                            walker: 0,
                            collected,
                            target: self.target,
                            queries: stats.queries_issued,
                            requests: stats.requests,
                        },
                    );
                    on_event(&SessionEvent::SampleAccepted {
                        sample: s.clone(),
                        collected,
                        target: self.target,
                    });
                    samples.push(s);
                }
                Err(SamplerError::BudgetExhausted { .. }) => {
                    break StopReason::BudgetExhausted;
                }
                Err(e) => break StopReason::Failed(e),
            }
        };
        on_event(&SessionEvent::Stopped(reason.clone()));
        SessionOutcome {
            samples,
            reason,
            stats: sampler.stats(),
        }
    }

    /// Parallel variant: spawn `workers` samplers built by `make_sampler`
    /// (one per thread, typically sharing an `Arc`'d executor/cache) and
    /// merge their samples until the global target is met.
    ///
    /// Ordering of the merged samples is nondeterministic; the *set* is
    /// reproducible only under a single worker. The outcome's stats merge
    /// every worker's counters ([`SamplerStats::merge_worker`]):
    /// sampler-local counters sum, the executor-view counters take the max
    /// (exact when the workers share one executor). `accepted` counts
    /// samples *produced*, which can exceed the collected set when workers
    /// overshoot the target before the kill switch reaches them.
    pub fn run_parallel<S, F>(&self, workers: usize, make_sampler: F) -> SessionOutcome
    where
        S: Sampler,
        F: Fn(usize) -> S + Sync,
    {
        self.run_parallel_observed(workers, make_sampler, &mut [])
    }

    /// [`SamplingSession::run_parallel`] with streaming observation: each
    /// sink is [`fork`](SampleSink::fork)ed once per worker, a worker's
    /// accepted samples are observed into its fork (in that worker's
    /// production order, as the collector admits them to the shared set),
    /// and the forks are [`merge`](SampleSink::merge)d back in worker
    /// order on join. As in the single-threaded path, the sinks' final
    /// state describes exactly the collected sample set — overshoot
    /// samples a worker produced after the target was met are observed by
    /// no sink.
    pub fn run_parallel_observed<S, F>(
        &self,
        workers: usize,
        make_sampler: F,
        sinks: &mut [&mut dyn SampleSink],
    ) -> SessionOutcome
    where
        S: Sampler,
        F: Fn(usize) -> S + Sync,
    {
        assert!(workers >= 1, "need at least one worker");
        let (tx, rx) =
            crossbeam::channel::unbounded::<(usize, Result<Sample, SamplerError>, SamplerStats)>();
        // One fork per (sink, worker); merged back in worker order after
        // the scope joins.
        let mut forks: Vec<Vec<Box<dyn SampleSink>>> = sinks
            .iter()
            .map(|s| (0..workers).map(|_| s.fork()).collect())
            .collect();
        let kill = &self.kill;
        // Run-local stop flag. Workers are told to wind down through this,
        // *never* by storing into the user-facing kill switch: the session
        // (and every `kill_switch()` handle a UI holds) must stay reusable
        // for another run, and a latched kill switch would make every later
        // run return 0 samples as `Killed`.
        let stop = AtomicBool::new(false);
        let stop = &stop;
        let target = self.target;

        let mut samples = SampleSet::new();
        let mut reason = StopReason::TargetReached;
        let mut merged_stats = SamplerStats::default();

        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let tx = tx.clone();
                let make_sampler = &make_sampler;
                handles.push(scope.spawn(move |_| {
                    let mut sampler = make_sampler(w);
                    loop {
                        if stop.load(Ordering::Relaxed) || kill.load(Ordering::Relaxed) {
                            break;
                        }
                        let out = sampler.next_sample();
                        let is_err = out.is_err();
                        if tx.send((w, out, sampler.stats())).is_err() || is_err {
                            break;
                        }
                    }
                    drop(tx);
                    sampler.stats()
                }));
            }
            drop(tx);

            while samples.len() < target {
                match rx.recv() {
                    Ok((w, Ok(s), stats)) => {
                        let collected = samples.len() + 1;
                        let ev = SampleEvent {
                            sample: &s,
                            site: self.site,
                            walker: w,
                            collected,
                            target,
                            queries: stats.queries_issued,
                            requests: stats.requests,
                        };
                        for worker_forks in forks.iter_mut() {
                            worker_forks[w].observe(&ev);
                        }
                        samples.push(s);
                    }
                    Ok((_, Err(SamplerError::BudgetExhausted { .. }), _)) => {
                        reason = StopReason::BudgetExhausted;
                        break;
                    }
                    Ok((_, Err(e), _)) => {
                        reason = StopReason::Failed(e);
                        break;
                    }
                    Err(_) => {
                        reason = StopReason::Failed(SamplerError::Config(
                            "all workers exited before reaching the target".into(),
                        ));
                        break;
                    }
                }
            }
            if self.kill.load(Ordering::Relaxed) && samples.len() < target {
                reason = StopReason::Killed;
            }
            // Stop workers, then collect each worker's final counters.
            stop.store(true, Ordering::Relaxed);
            for handle in handles {
                let worker_stats = handle.join().expect("worker panicked");
                merged_stats.merge_worker(&worker_stats);
            }
            while rx.try_recv().is_ok() {}
        })
        .expect("worker panicked");

        for (sink, worker_forks) in sinks.iter_mut().zip(forks) {
            for fork in worker_forks {
                sink.merge(fork);
            }
        }

        SessionOutcome {
            samples,
            reason,
            stats: merged_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SamplerConfig;
    use crate::executor::DirectExecutor;
    use crate::hds::HdsSampler;
    use hdsampler_workload::figure1_db;

    #[test]
    fn runs_to_target_with_events() {
        let db = figure1_db(1);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(1)).unwrap();
        let session = SamplingSession::new(25);
        let mut accepted_events = 0;
        let out = session.run(&mut s, |e| {
            if matches!(e, SessionEvent::SampleAccepted { .. }) {
                accepted_events += 1;
            }
        });
        assert_eq!(out.reason, StopReason::TargetReached);
        assert_eq!(out.samples.len(), 25);
        assert_eq!(accepted_events, 25);
        assert_eq!(out.stats.accepted, 25);
    }

    #[test]
    fn kill_switch_stops_early() {
        let db = figure1_db(1);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(2)).unwrap();
        let session = SamplingSession::new(1_000_000);
        let kill = session.kill_switch();
        let mut n = 0;
        let out = session.run(&mut s, |e| {
            if matches!(e, SessionEvent::SampleAccepted { .. }) {
                n += 1;
                if n == 10 {
                    kill.store(true, Ordering::Relaxed);
                }
            }
        });
        assert_eq!(out.reason, StopReason::Killed);
        assert_eq!(out.samples.len(), 10, "stops at the kill point");
    }

    #[test]
    fn budget_exhaustion_yields_partial_results() {
        use hdsampler_hidden_db::HiddenDb;
        use hdsampler_model::{Attribute, SchemaBuilder, Tuple};
        let schema = SchemaBuilder::new()
            .attribute(Attribute::boolean("x"))
            .attribute(Attribute::boolean("y"))
            .finish()
            .unwrap()
            .into_shared();
        let mut b = HiddenDb::builder(std::sync::Arc::clone(&schema))
            .result_limit(1)
            .query_budget(30);
        for vals in [[0u16, 0], [0, 1], [1, 0], [1, 1]] {
            b.push(&Tuple::new(&schema, vals.to_vec(), vec![]).unwrap())
                .unwrap();
        }
        let db = b.finish();
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(3)).unwrap();
        let session = SamplingSession::new(10_000);
        let out = session.run(&mut s, |_| {});
        assert_eq!(out.reason, StopReason::BudgetExhausted);
        assert!(!out.samples.is_empty(), "partial results survive");
        assert!(out.samples.len() < 10_000);
    }

    #[test]
    fn session_is_reusable_after_run_parallel() {
        // Regression: `run_parallel` used to stop its workers by latching
        // `self.kill` to true and never resetting it, so a second
        // `run`/`run_parallel` on the same session returned 0 samples with
        // `StopReason::Killed` — and every `kill_switch()` Arc handed to a
        // UI read as permanently tripped.
        use crate::history::CachingExecutor;
        let db = figure1_db(1);
        let exec = Arc::new(CachingExecutor::new(&db));
        let session = SamplingSession::new(20);
        let kill = session.kill_switch();

        let first = session.run_parallel(3, |w| {
            HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(500 + w as u64))
                .expect("valid config")
        });
        assert_eq!(first.reason, StopReason::TargetReached);
        assert_eq!(first.samples.len(), 20);
        assert!(
            !kill.load(Ordering::Relaxed),
            "finishing a run must not trip the user-facing kill switch"
        );

        // Same session object, second parallel run: must reach the target
        // again instead of dying instantly as Killed.
        let second = session.run_parallel(3, |w| {
            HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(900 + w as u64))
                .expect("valid config")
        });
        assert_eq!(second.reason, StopReason::TargetReached);
        assert_eq!(second.samples.len(), 20);

        // And the single-threaded entry point still works on it too.
        let mut s = HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(7)).unwrap();
        let third = session.run(&mut s, |_| {});
        assert_eq!(third.reason, StopReason::TargetReached);
        assert_eq!(third.samples.len(), 20);

        // The kill switch itself still functions after all that.
        kill.store(true, Ordering::Relaxed);
        let killed = session.run(&mut s, |_| {});
        assert_eq!(killed.reason, StopReason::Killed);
    }

    #[test]
    fn observed_run_streams_every_collected_sample() {
        use crate::sink::{SampleSetSink, SampleSink as _};
        let db = figure1_db(1);
        let mut s = HdsSampler::new(DirectExecutor::new(&db), SamplerConfig::seeded(4)).unwrap();
        let session = SamplingSession::new(30).with_site(7);
        let mut collector = SampleSetSink::new();
        let mut events = Vec::new();
        let out = {
            let mut sinks: Vec<&mut dyn crate::sink::SampleSink> = vec![&mut collector];
            session.run_observed(&mut s, &mut sinks, |e| {
                if let SessionEvent::SampleAccepted {
                    sample, collected, ..
                } = e
                {
                    events.push((sample.row.key, *collected));
                }
            })
        };
        assert_eq!(out.reason, StopReason::TargetReached);
        // The sink saw exactly the collected set, in order.
        assert_eq!(collector.set().keys(), out.samples.keys());
        // The session event carries the sample payload and running count.
        assert_eq!(
            events,
            out.samples
                .keys()
                .into_iter()
                .zip(1..=30)
                .collect::<Vec<_>>()
        );
        // fork/merge of the set sink concatenates.
        let forked = collector.fork();
        collector.merge(forked);
        assert_eq!(collector.set().len(), 30);
    }

    #[test]
    fn parallel_observed_sinks_describe_the_collected_set() {
        use crate::history::CachingExecutor;
        use crate::sink::{SampleSetSink, SampleSink};
        let db = figure1_db(1);
        let exec = Arc::new(CachingExecutor::new(&db));
        let session = SamplingSession::new(40);
        let mut collector = SampleSetSink::new();
        let out = {
            let mut sinks: Vec<&mut dyn SampleSink> = vec![&mut collector];
            session.run_parallel_observed(
                3,
                |w| {
                    HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(40 + w as u64))
                        .expect("valid config")
                },
                &mut sinks,
            )
        };
        assert_eq!(out.reason, StopReason::TargetReached);
        // Same multiset of samples: merge groups per worker, so only the
        // (key-sorted) contents are comparable, not the interleaving.
        let mut observed = collector.set().keys();
        let mut collected = out.samples.keys();
        observed.sort_unstable();
        collected.sort_unstable();
        assert_eq!(observed, collected);
        assert_eq!(collector.set().len(), 40, "no overshoot reaches the sink");
    }

    #[test]
    fn parallel_session_reaches_target_on_shared_cache() {
        use crate::executor::QueryExecutor as _;
        use crate::history::CachingExecutor;
        let db = figure1_db(1);
        let exec = Arc::new(CachingExecutor::new(&db));
        let session = SamplingSession::new(60);
        let out = session.run_parallel(4, |w| {
            HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(100 + w as u64))
                .expect("valid config")
        });
        assert_eq!(out.reason, StopReason::TargetReached);
        assert_eq!(out.samples.len(), 60);
        // All sampled rows are genuine database tuples.
        for row in out.samples.rows() {
            assert!(db.oracle().tuple_by_key(row.key).is_some());
        }
        // Merged worker stats are real counters, not approximations:
        // every collected sample was produced by some worker, and the
        // shared-executor charge figure matches the executor exactly.
        assert!(out.stats.accepted >= out.samples.len() as u64);
        assert!(out.stats.walks >= out.stats.accepted);
        assert_eq!(out.stats.queries_issued, exec.queries_issued());
        assert_eq!(out.stats.requests, exec.requests());
    }
}
