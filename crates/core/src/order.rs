//! Attribute-order strategies for the drill-down walk.
//!
//! The SIGMOD 2007 analysis behind HDSampler observed that a *fixed*
//! attribute order systematically favours tuples that become unique early
//! along that order; re-scrambling the order independently for every walk
//! averages the depth profile across tuples and measurably reduces skew at
//! a given scaling factor `C`. Both strategies are provided; the scrambling
//! ablation (`exp_scrambling`) quantifies the difference.

use serde::{Deserialize, Serialize};

use hdsampler_model::AttrId;
use rand::Rng;

/// How the Sample Generator orders attributes when extending a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderStrategy {
    /// Use the schema's declaration order for every walk (the basic
    /// algorithm of §2 / Figure 1).
    Fixed,
    /// Draw a fresh uniform permutation per walk (skew-reduction variant).
    ScramblePerWalk,
}

impl OrderStrategy {
    /// Materialize the order for one walk over the drillable attributes.
    pub fn make_order<R: Rng>(&self, drill: &[AttrId], rng: &mut R) -> Vec<AttrId> {
        let mut order = drill.to_vec();
        if *self == OrderStrategy::ScramblePerWalk {
            // Fisher–Yates.
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn attrs(n: u16) -> Vec<AttrId> {
        (0..n).map(AttrId).collect()
    }

    #[test]
    fn fixed_preserves_declaration_order() {
        let mut rng = StdRng::seed_from_u64(1);
        let order = OrderStrategy::Fixed.make_order(&attrs(5), &mut rng);
        assert_eq!(order, attrs(5));
    }

    #[test]
    fn scramble_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let order = OrderStrategy::ScramblePerWalk.make_order(&attrs(8), &mut rng);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, attrs(8));
    }

    #[test]
    fn scramble_varies_between_walks() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = OrderStrategy::ScramblePerWalk.make_order(&attrs(10), &mut rng);
        let b = OrderStrategy::ScramblePerWalk.make_order(&attrs(10), &mut rng);
        assert_ne!(a, b, "astronomically unlikely to coincide");
    }

    #[test]
    fn scramble_is_roughly_uniform_over_first_position() {
        // Each attribute should land first ~1/4 of the time.
        let mut rng = StdRng::seed_from_u64(4);
        let mut firsts = [0u32; 4];
        for _ in 0..40_000 {
            let order = OrderStrategy::ScramblePerWalk.make_order(&attrs(4), &mut rng);
            firsts[order[0].index()] += 1;
        }
        for &f in &firsts {
            let share = f as f64 / 40_000.0;
            assert!((share - 0.25).abs() < 0.02, "first-position share {share}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(OrderStrategy::ScramblePerWalk
            .make_order(&[], &mut rng)
            .is_empty());
        assert_eq!(
            OrderStrategy::ScramblePerWalk.make_order(&attrs(1), &mut rng),
            attrs(1)
        );
    }
}
