//! Property-based tests for the sampler core: the history cache's
//! inference is indistinguishable from direct evaluation on arbitrary
//! databases and query mixes, and the acceptance machinery obeys its
//! bounds.

use std::sync::Arc;

use hdsampler_core::sample::Sampler;
use hdsampler_core::{
    acceptance::acceptance_probability, CachingExecutor, Classified, DirectExecutor, HdsSampler,
    QueryExecutor, SamplerConfig,
};
use hdsampler_hidden_db::{CountMode, HiddenDb};
use hdsampler_model::{AttrId, Attribute, ConjunctiveQuery, DomIx, Schema, SchemaBuilder, Tuple};
use proptest::prelude::*;

fn boolean_schema(m: usize) -> Arc<Schema> {
    let mut b = SchemaBuilder::new();
    for i in 0..m {
        b = b.attribute(Attribute::boolean(format!("a{i}")));
    }
    b.finish().unwrap().into_shared()
}

fn build_db(m: usize, rows: &[u32], k: usize, counts: CountMode) -> HiddenDb {
    let schema = boolean_schema(m);
    let mut b = HiddenDb::builder(Arc::clone(&schema))
        .result_limit(k)
        .count_mode(counts);
    for &bits in rows {
        let values: Vec<DomIx> = (0..m).map(|i| ((bits >> i) & 1) as DomIx).collect();
        b.push(&Tuple::new(&schema, values, vec![]).unwrap())
            .unwrap();
    }
    b.finish()
}

/// A random query over `m` Boolean attributes encoded as (mask, values).
fn queries(m: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    let m = m as u32;
    prop::collection::vec((0u32..(1 << m), 0u32..(1 << m)), 1..60)
}

fn decode_query(m: usize, mask: u32, values: u32) -> ConjunctiveQuery {
    let pairs = (0..m)
        .filter(|i| mask & (1 << i) != 0)
        .map(|i| (AttrId(i as u16), ((values >> i) & 1) as DomIx));
    ConjunctiveQuery::from_pairs(pairs).unwrap()
}

fn row_keys(c: &Classified) -> Vec<u64> {
    let mut keys: Vec<u64> = c
        .rows
        .iter()
        .flat_map(|rows| rows.iter().map(|r| r.key))
        .collect();
    keys.sort_unstable();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// THE correctness property of §3.2: for any database, any k, and any
    /// interleaving of classify/count requests, the caching executor's
    /// answers equal the direct executor's — while charging fewer queries.
    #[test]
    fn inference_equals_direct_evaluation(
        rows in prop::collection::vec(0u32..32, 1..80),
        k in 1usize..5,
        qs in queries(5),
    ) {
        let m = 5;
        let db_a = build_db(m, &rows, k, CountMode::Exact);
        let db_b = build_db(m, &rows, k, CountMode::Exact);
        let direct = DirectExecutor::new(&db_a);
        let cached = CachingExecutor::new(&db_b);

        for &(mask, values) in &qs {
            let q = decode_query(m, mask, values);
            // Alternate classify and count to stress both code paths.
            let d = direct.classify(&q).unwrap();
            let c = cached.classify(&q).unwrap();
            prop_assert_eq!(d.class, c.class, "query {:?}", q);
            prop_assert_eq!(row_keys(&d), row_keys(&c), "query {:?}", q);

            let dc = direct.count(&q).unwrap();
            let cc = cached.count(&q).unwrap();
            prop_assert_eq!(dc, cc);
        }
        prop_assert!(cached.queries_issued() <= direct.queries_issued());
    }

    /// Acceptance probability is always in (0, 1], equals the exact
    /// uniformity correction at C = 1, and is monotone in every argument
    /// that should help acceptance.
    #[test]
    fn acceptance_probability_bounds(
        depth_doms in prop::collection::vec(2usize..8, 0..6),
        extra_doms in prop::collection::vec(2usize..8, 1..6),
        j in 1usize..50,
        c_exp in 0u32..20,
    ) {
        let branch: f64 = depth_doms.iter().map(|&d| d as f64).product();
        let rest: f64 = extra_doms.iter().map(|&d| d as f64).product();
        let b = branch * rest;
        let c = 2f64.powi(c_exp as i32);
        let a = acceptance_probability(c, branch, j, b);
        prop_assert!(a > 0.0 && a <= 1.0);
        // Monotone in C.
        let a2 = acceptance_probability(c * 2.0, branch, j, b);
        prop_assert!(a2 >= a);
        // Monotone in j.
        let aj = acceptance_probability(c, branch, j + 1, b);
        prop_assert!(aj >= a);
        // At C = 1 with j = 1 the value is exactly branch/B.
        let exact = acceptance_probability(1.0, branch, 1, b);
        prop_assert!((exact - (branch / b).min(1.0)).abs() < 1e-12);
    }

    /// Sampled rows always satisfy the configured scope, whatever it is.
    #[test]
    fn samples_respect_arbitrary_scopes(
        rows in prop::collection::vec(0u32..32, 20..80),
        mask in 0u32..8u32,
        values in 0u32..8u32,
    ) {
        let m = 5;
        let db = build_db(m, &rows, 2, CountMode::Absent);
        let scope = decode_query(3, mask, values); // scope over first 3 attrs
        let cfg = SamplerConfig::seeded(7).with_scope(scope.clone()).with_max_walks(20_000);
        let mut sampler = HdsSampler::new(DirectExecutor::new(&db), cfg).unwrap();
        for _ in 0..10 {
            match sampler.next_sample() {
                Ok(s) => prop_assert!(scope.matches(&s.row.values)),
                // Empty scopes and walk limits are legitimate outcomes of
                // random scopes on random data.
                Err(_) => break,
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Layered eviction protects learned containment facts: whatever mix
    /// of classify/count traffic floods a capacity-bounded shard, the
    /// charged empty/overflow facts (each one a budgeted page fetch) keep
    /// answering for free — only the rederivable layers (memo, rule-4
    /// rows, memoized counts) are sacrificed, and the shard never
    /// cold-restarts unless containment facts alone bust the bound.
    #[test]
    fn containment_facts_survive_memo_and_count_pressure(
        rows in prop::collection::vec(0u32..16, 10..80),
        qs in prop::collection::vec((0u32..16, 0u32..16), 0..30),
    ) {
        let m = 6;
        // Rows use only the low four attributes: a4 = a5 = 0 everywhere.
        let db = build_db(m, &rows, 1, CountMode::Exact);
        // Single shard, capacity 80: the flood below stores at most ~32
        // containment facts, so a cold restart is structurally impossible
        // while the count flood guarantees capacity pressure.
        let exec = CachingExecutor::with_shards(&db, 80, 1);

        // Two charged facts worth one page fetch each.
        let empty_fact = decode_query(m, 0b10_0000, 0b10_0000); // a5 = 1
        let overflow_fact = decode_query(m, 0b11_0000, 0); // a4 = 0 ∧ a5 = 0
        prop_assert_eq!(
            exec.classify(&empty_fact).unwrap().class,
            hdsampler_model::Classification::Empty
        );
        prop_assert_eq!(
            exec.classify(&overflow_fact).unwrap().class,
            hdsampler_model::Classification::Overflow,
            "k = 1 with ≥10 rows overflows"
        );

        // Random classify flood over the low attributes…
        for &(mask, values) in &qs {
            exec.classify(&decode_query(4, mask, values)).unwrap();
        }
        // …then a deterministic count flood: all 3⁴ = 81 queries over the
        // low attributes, one memoized count each — more than capacity.
        for mask in 0u32..16 {
            for values in 0u32..16 {
                if values & !mask == 0 {
                    exec.count(&decode_query(4, mask, values)).unwrap();
                }
            }
        }

        let stats = exec.history_stats();
        prop_assert!(stats.evictions >= 1, "the flood must bust capacity");
        prop_assert_eq!(stats.cold_restarts, 0, "containment facts alone never bust it");

        // The charged facts still answer derived queries without a fetch.
        let charged = exec.queries_issued();
        let refined_empty = decode_query(m, 0b10_0001, 0b10_0000); // a5=1 ∧ a0=0
        prop_assert_eq!(
            exec.classify(&refined_empty).unwrap().class,
            hdsampler_model::Classification::Empty
        );
        let broadened_overflow = decode_query(m, 0b01_0000, 0); // a4 = 0
        prop_assert_eq!(
            exec.classify(&broadened_overflow).unwrap().class,
            hdsampler_model::Classification::Overflow
        );
        prop_assert_eq!(
            exec.queries_issued(),
            charged,
            "surviving facts must answer for free after eviction pressure"
        );
    }

    /// Sharding is an implementation detail: for any database and query
    /// mix, a 16-shard cache answers identically to a single-lock cache
    /// and reports identical hit/miss counters per rule — the observable
    /// definition of "same semantics as the unsharded cache".
    #[test]
    fn sharded_counters_match_unsharded_semantics(
        rows in prop::collection::vec(0u32..32, 1..80),
        k in 1usize..5,
        qs in queries(5),
    ) {
        let m = 5;
        let db_one = build_db(m, &rows, k, CountMode::Exact);
        let db_many = build_db(m, &rows, k, CountMode::Exact);
        let single = CachingExecutor::with_shards(&db_one, 250_000, 1);
        let sharded = CachingExecutor::with_shards(&db_many, 250_000, 16);
        prop_assert_eq!(single.shard_count(), 1);
        prop_assert_eq!(sharded.shard_count(), 16);

        for &(mask, values) in &qs {
            let q = decode_query(m, mask, values);
            let a = single.classify(&q).unwrap();
            let b = sharded.classify(&q).unwrap();
            prop_assert_eq!(a.class, b.class, "query {:?}", q);
            prop_assert_eq!(row_keys(&a), row_keys(&b), "query {:?}", q);
            prop_assert_eq!(single.count(&q).unwrap(), sharded.count(&q).unwrap());
        }
        // Counters match rule for rule; only the reported shard count —
        // deliberately pinned by `with_shards` above — may differ.
        let mut one = single.history_stats();
        let sixteen = sharded.history_stats();
        prop_assert_eq!(one.shard_count, 1);
        prop_assert_eq!(sixteen.shard_count, 16);
        one.shard_count = sixteen.shard_count;
        prop_assert_eq!(one, sixteen);
        prop_assert_eq!(single.queries_issued(), sharded.queries_issued());
        prop_assert_eq!(single.requests(), sharded.requests());
    }
}

#[test]
fn parallel_walkers_on_sharded_cache_agree_with_direct() {
    // 8 walkers hammer one sharded cache; every distinct answer the cache
    // ever gave must match direct evaluation.
    use hdsampler_core::SamplingSession;

    let rows: Vec<u32> = (0..200u32)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % 64)
        .collect();
    let db = build_db(6, &rows, 3, CountMode::Absent);
    let exec = Arc::new(CachingExecutor::new(&db));
    let session = SamplingSession::new(120);
    let out = session.run_parallel(8, |w| {
        HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(500 + w as u64))
            .expect("valid config")
    });
    assert_eq!(out.samples.len(), 120);
    assert!(
        exec.history_stats().total_hits() > 0,
        "parallel walkers must share inference savings"
    );

    let db2 = build_db(6, &rows, 3, CountMode::Absent);
    let direct = DirectExecutor::new(&db2);
    for mask in 0u32..64 {
        for values in [0u32, 21, 42, 63] {
            let q = decode_query(6, mask, values);
            let c = exec.classify(&q).unwrap();
            let d = direct.classify(&q).unwrap();
            assert_eq!(c.class, d.class, "{q:?}");
            assert_eq!(row_keys(&c), row_keys(&d), "{q:?}");
        }
    }
}

#[test]
fn cache_and_direct_agree_after_heavy_sampling() {
    // Deterministic end-to-end: run a sampler against the cache, then
    // replay every distinct query directly and compare.
    let rows: Vec<u32> = (0..200u32)
        .map(|i| (i.wrapping_mul(2_654_435_761)) % 64)
        .collect();
    let db = build_db(6, &rows, 3, CountMode::Exact);
    let cached = CachingExecutor::new(&db);
    let mut sampler = HdsSampler::new(&cached, SamplerConfig::seeded(3)).unwrap();
    for _ in 0..100 {
        sampler.next_sample().unwrap();
    }
    // Replay a probe battery.
    let db2 = build_db(6, &rows, 3, CountMode::Exact);
    let direct = DirectExecutor::new(&db2);
    for mask in 0u32..64 {
        for values in [0u32, 21, 42, 63] {
            let q = decode_query(6, mask, values);
            let c = cached.classify(&q).unwrap();
            let d = direct.classify(&q).unwrap();
            assert_eq!(c.class, d.class, "{q:?}");
            assert_eq!(row_keys(&c), row_keys(&d), "{q:?}");
        }
    }
}
