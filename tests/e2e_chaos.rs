//! End-to-end chaos run: a cooperative fleet behind adversarial wires —
//! every fault class firing at once (throttles, transient 503s, dropped
//! connections, slow-start + jitter delays, noisy count banners) — still
//! reaches its full sample target, never double-charges a retried query
//! against the budget, steals walkers from sites that finish early, keeps
//! its online estimators byte-identical to the post-hoc batch build, and
//! replays bit-identically from the same seeds.

use std::sync::Arc;

use hdsampler::prelude::*;

type Wire = ChaosTransport<LocalSite<Arc<HiddenDb>>>;

/// Patient enough to ride out bursts at these fault rates, still bounded.
const PATIENT: RetryPolicy = RetryPolicy {
    max_retries: 12,
    base_backoff_ms: 25,
    max_backoff_ms: 800,
};

/// Every fault class enabled. `hostility` scales the rates so the fleet
/// can mix mildly and severely adversarial sites.
fn hostile_spec(seed: u64, hostility: f64) -> ChaosSpec {
    ChaosSpec {
        seed,
        throttle: 0.15 * hostility,
        retry_after_ms: 120,
        fail: 0.08 * hostility,
        drop: 0.04 * hostility,
        slow_start_ms: 300,
        slow_warmup: 40,
        jitter_ms: 25,
        count_noise: 0.5,
        latency_ms: 30,
    }
}

fn site_task(name: &str, n: usize, db_seed: u64, spec: ChaosSpec) -> SiteTask<Wire> {
    // Exact-count sites: the pages carry an "About N results" banner for
    // the count-noise episodes to corrupt. The scraper is told not to
    // trust it (`supports_count = false`), so the noise is observable on
    // the wire yet can never bias the sampler.
    let db = hdsampler::simulated_site(n, 60, db_seed);
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let site = LocalSite::new(Arc::clone(&db), Arc::clone(&schema));
    let wire = ChaosTransport::new(site, spec);
    SiteTask::new(
        name,
        WebFormInterface::new(wire, schema, k, false).with_retry(PATIENT),
    )
}

/// One hostile site among calmer peers: the calm sites finish first and
/// donate their walkers to the hostile one.
fn fleet() -> Vec<SiteTask<Wire>> {
    vec![
        site_task("calm-a", 600, 11, hostile_spec(1, 0.3)),
        site_task("hostile", 600, 22, hostile_spec(2, 2.0)),
        site_task("calm-b", 600, 33, hostile_spec(3, 0.3)),
    ]
}

const TARGET: usize = 60;

fn run_fleet(fleet: &mut [SiteTask<Wire>]) -> RunReport {
    RunPlan::target(TARGET)
        .walkers(3)
        .seed(2009)
        .driver(Driver::Coop { conns: Some(3) })
        .steal(true)
        .run(fleet)
}

#[test]
fn adversarial_fleet_converges_with_every_fault_class_firing() {
    let make = AttrId(0);
    let schema = hdsampler::simulated_site(50, 60, 1).schema().clone();

    let mut fleet = fleet();
    let mut stream = SampleSetSink::new();
    let mut hist = Histogram::new(&schema, make);
    let pred = |r: &Row| r.values[0] == 0;
    let mut prop = OnlineProportion::new(pred);
    let report = RunPlan::target(TARGET)
        .walkers(3)
        .seed(2009)
        .driver(Driver::Coop { conns: Some(3) })
        .steal(true)
        .attach(&mut stream)
        .attach(&mut hist)
        .attach(&mut prop)
        .run(&mut fleet);

    // The fleet rode it all out: full target everywhere, no failures, and
    // in particular no throttle mistaken for budget exhaustion.
    assert_eq!(report.total_samples(), 3 * TARGET);
    for site in &report.fleet.sites {
        assert_eq!(site.stopped, StopReason::TargetReached, "{}", site.name);
        assert_eq!(site.samples.len(), TARGET, "{}", site.name);
    }

    // Every fault class actually fired somewhere in the fleet.
    let counters: Vec<ChaosCounters> = fleet
        .iter()
        .map(|t| t.iface.transport().counters())
        .collect();
    let total = |f: fn(&ChaosCounters) -> u64| counters.iter().map(f).sum::<u64>();
    assert!(total(|c| c.throttles) > 0, "throttles fired: {counters:?}");
    assert!(total(|c| c.transient_fails) > 0, "503s fired: {counters:?}");
    assert!(total(|c| c.drops) > 0, "drops fired: {counters:?}");
    assert!(
        total(|c| c.noisy_pages) > 0,
        "count noise fired: {counters:?}"
    );
    assert!(
        total(|c| c.extra_delay_ms) > 0,
        "slow-start/jitter delayed requests: {counters:?}"
    );

    // Retries rode the faults out and were billed as retries — never as
    // extra logical queries against the site's budget.
    assert!(report.fleet.total_retries() > 0);
    for (task, site) in fleet.iter().zip(&report.fleet.sites) {
        assert_eq!(
            site.queries_issued,
            task.iface.fetches(),
            "{}: budget view counts logical queries only",
            site.name
        );
        assert_eq!(site.stats.retries, site.retries, "{}", site.name);
        if site.retries > 0 {
            assert!(site.backoff_vms > 0, "{}: retries waited", site.name);
        }
    }

    // The calm sites finished early and donated walkers to the hostile
    // one — stealing shows up exactly where the pressure was.
    assert!(
        report.fleet.total_steals() > 0,
        "walkers moved: {:?}",
        report
            .fleet
            .sites
            .iter()
            .map(|s| (&s.name, s.steals))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        report.fleet.sites[1].steals,
        report.fleet.total_steals(),
        "only the hostile site received walkers"
    );

    // Online estimators over the chaotic stream are still byte-identical
    // to the post-hoc batch build — faults shake the wire, not the math.
    let observed = stream.set();
    assert_eq!(observed.len(), 3 * TARGET);
    let batch_hist = Histogram::from_weighted(
        &schema,
        make,
        observed.samples().iter().map(|s| (&s.row, s.weight)),
    );
    assert_eq!(hist.counts().len(), batch_hist.counts().len());
    for (i, (x, y)) in hist.counts().iter().zip(batch_hist.counts()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "histogram bucket {i}");
    }
    let est = Estimator::new(observed);
    let batch_prop = est.proportion(pred);
    let online = prop.snapshot();
    assert_eq!(online.n, batch_prop.n);
    assert_eq!(online.value.to_bits(), batch_prop.value.to_bits());
    assert_eq!(online.half_width.to_bits(), batch_prop.half_width.to_bits());
}

#[test]
fn chaos_runs_replay_bit_identically() {
    // Same seeds, same fleet, same plan ⇒ the same samples, the same
    // faults, the same steals, the same clocks. Chaos is reproducible.
    let fingerprint = || {
        let mut tasks = fleet();
        let report = run_fleet(&mut tasks);
        let keys: Vec<Vec<u64>> = report
            .fleet
            .sites
            .iter()
            .map(|s| s.samples.keys())
            .collect();
        let counters: Vec<ChaosCounters> = tasks
            .iter()
            .map(|t| t.iface.transport().counters())
            .collect();
        let resilience: Vec<(u64, u64, u64)> = report
            .fleet
            .sites
            .iter()
            .map(|s| (s.retries, s.backoff_vms, s.steals))
            .collect();
        (keys, counters, resilience, report.fleet.fleet_elapsed_ms)
    };
    assert_eq!(fingerprint(), fingerprint());
}
