//! Reproducibility: serialized workload specs rebuild identical sites, and
//! seeded samplers replay identical sessions — the property every
//! experiment in `EXPERIMENTS.md` relies on.

use hdsampler::prelude::*;
use std::sync::Arc;

#[test]
fn workload_spec_json_roundtrip_rebuilds_identical_site() {
    let spec = WorkloadSpec::vehicles(
        VehiclesSpec::full(3_000, 123),
        DbConfig::exact_counts().with_k(500),
    );
    let json = serde_json::to_string_pretty(&spec).unwrap();
    let back: WorkloadSpec = serde_json::from_str(&json).unwrap();
    assert_eq!(back, spec);

    let a = spec.build();
    let b = back.build();
    let schema = a.schema().clone();
    // Identical responses on a battery of probes.
    for probe in [
        ConjunctiveQuery::empty(),
        ConjunctiveQuery::from_named(&schema, [("make", "Toyota")]).unwrap(),
        ConjunctiveQuery::from_named(&schema, [("make", "Honda"), ("condition", "used")]).unwrap(),
        ConjunctiveQuery::from_named(&schema, [("year", "1997"), ("fuel", "diesel")]).unwrap(),
    ] {
        assert_eq!(a.execute(&probe).unwrap(), b.execute(&probe).unwrap());
        assert_eq!(a.count(&probe).unwrap(), b.count(&probe).unwrap());
    }
}

#[test]
fn sampler_config_json_roundtrip() {
    let cfg = SamplerConfig::seeded(9)
        .with_slider(0.3)
        .with_order(OrderStrategy::Fixed)
        .with_drill_attrs(["make", "year"]);
    let json = serde_json::to_string(&cfg).unwrap();
    let back: SamplerConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);
}

#[test]
fn seeded_sessions_replay_exactly() {
    let db = Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(3_000, 5),
            DbConfig::no_counts().with_k(100),
        )
        .build(),
    );
    let run = || {
        let mut s = HdsSampler::new(
            CachingExecutor::new(Arc::clone(&db)),
            SamplerConfig::seeded(42),
        )
        .unwrap();
        (0..100)
            .map(|_| s.next_sample().unwrap().row.key)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed, same site ⇒ same sample stream");
}

#[test]
fn different_seeds_differ() {
    let db = Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(3_000, 5),
            DbConfig::no_counts().with_k(100),
        )
        .build(),
    );
    let run = |seed| {
        let mut s = HdsSampler::new(
            CachingExecutor::new(Arc::clone(&db)),
            SamplerConfig::seeded(seed),
        )
        .unwrap();
        (0..50)
            .map(|_| s.next_sample().unwrap().row.key)
            .collect::<Vec<_>>()
    };
    assert_ne!(run(1), run(2));
}
