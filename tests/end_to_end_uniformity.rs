//! End-to-end statistical guarantees: the C = 1 sampler run through the
//! *full web scraping stack* produces samples whose distribution matches
//! ground truth, and the count-weighted sampler is exactly uniform on
//! exact counts.

use hdsampler::prelude::*;
use std::sync::Arc;

/// χ² of per-tuple sample counts against uniform; compares the statistic
/// to a generous bound (the 99.9th percentile of χ²_{n-1} is ≈ n + 4√(2n)
/// for large n).
fn assert_uniform_by_chi_square(db: &HiddenDb, keys: &[u64], n_tuples: usize) {
    let freq = db.oracle().frequency_by_tuple(keys);
    assert!(
        freq.keys().all(Option::is_some),
        "all sampled keys resolve to genuine tuples"
    );
    let counts: Vec<u64> = freq.values().copied().collect();
    let chi = hdsampler::estimator::chi_square_uniform(&counts, n_tuples, keys.len() as u64);
    let dof = (n_tuples - 1) as f64;
    let bound = dof + 4.0 * (2.0 * dof).sqrt();
    assert!(
        chi < bound,
        "χ² = {chi:.1} exceeds the 3σ-ish bound {bound:.1} for {n_tuples} tuples"
    );
}

#[test]
fn hds_uniform_through_webform_stack() {
    // Small Boolean DB so per-tuple statistics are meaningful.
    let spec = WorkloadSpec {
        data: DataSpec::BooleanIid {
            m: 9,
            n: 120,
            p: 0.5,
        },
        db: DbConfig::no_counts().with_k(5),
        seed: 21,
    };
    let db = Arc::new(spec.build());
    let iface = hdsampler::webform_stack(&db);
    let mut sampler =
        HdsSampler::new(CachingExecutor::new(&iface), SamplerConfig::seeded(99)).unwrap();

    let mut keys = Vec::new();
    for _ in 0..3_000 {
        keys.push(sampler.next_sample().unwrap().row.key);
    }
    assert_uniform_by_chi_square(&db, &keys, db.n_tuples());
}

#[test]
fn count_sampler_uniform_and_rejection_free() {
    let spec = WorkloadSpec {
        data: DataSpec::BooleanIid {
            m: 9,
            n: 120,
            p: 0.5,
        },
        db: DbConfig::exact_counts().with_k(5),
        seed: 22,
    };
    let db = Arc::new(spec.build());
    let mut sampler = CountWalkSampler::new(
        CachingExecutor::new(Arc::clone(&db)),
        SamplerConfig::seeded(5),
    )
    .unwrap();
    let mut keys = Vec::new();
    for _ in 0..3_000 {
        keys.push(sampler.next_sample().unwrap().row.key);
    }
    assert_uniform_by_chi_square(&db, &keys, db.n_tuples());
    let stats = sampler.stats();
    assert_eq!(stats.rejected, 0, "exact counts never reject");
    assert_eq!(stats.walks, 3_000, "every walk produces a sample");
}

#[test]
fn brute_force_uniform() {
    let spec = WorkloadSpec {
        data: DataSpec::BooleanIid {
            m: 8,
            n: 60,
            p: 0.5,
        },
        db: DbConfig::no_counts().with_k(3),
        seed: 23,
    };
    let db = Arc::new(spec.build());
    let mut sampler = BruteForceSampler::new(
        DirectExecutor::new(Arc::clone(&db)),
        SamplerConfig::seeded(5),
    )
    .unwrap();
    let mut keys = Vec::new();
    for _ in 0..2_000 {
        keys.push(sampler.next_sample().unwrap().row.key);
    }
    assert_uniform_by_chi_square(&db, &keys, db.n_tuples());
}

#[test]
fn raw_walk_is_demonstrably_skewed() {
    // Sanity check of the test's own power: with AcceptAll the same χ²
    // statistic must blow past the bound on a database engineered to have
    // very asymmetric walk depths (the Figure 1 construction scaled up).
    let db = Arc::new(hdsampler::workload::figure1_db(1));
    let mut sampler = HdsSampler::new(
        DirectExecutor::new(Arc::clone(&db)),
        SamplerConfig::seeded(5)
            .with_order(OrderStrategy::Fixed)
            .with_acceptance(AcceptancePolicy::AcceptAll),
    )
    .unwrap();
    let keys: Vec<u64> = (0..2_000)
        .map(|_| sampler.next_sample().unwrap().row.key)
        .collect();
    let freq = db.oracle().frequency_by_tuple(&keys);
    let counts: Vec<u64> = freq.values().copied().collect();
    let chi = hdsampler::estimator::chi_square_uniform(&counts, 4, keys.len() as u64);
    assert!(
        chi > 100.0,
        "raw walk skew must be detected (χ² = {chi:.1})"
    );
}
