//! End-to-end streaming guarantee: a multi-site [`CoopDriver`] run
//! (through the [`RunPlan`] front door) feeds live [`SampleSink`]
//! snapshots whose final state is **byte-identical** to the post-hoc
//! batch estimate over the collected samples — the §3.4 incremental
//! Output Module, verified against its batch twin.

use std::any::Any;
use std::sync::Arc;

use hdsampler::prelude::*;

type Wire = LatencyTransport<LocalSite<Arc<HiddenDb>>>;

fn site_task(name: &str, n: usize, seed: u64, latency_ms: u64) -> SiteTask<Wire> {
    let db = hdsampler::simulated_site(n, 60, seed);
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let supports = db.supports_count();
    let site = LocalSite::new(Arc::clone(&db), Arc::clone(&schema));
    let wire = LatencyTransport::new(site, latency_ms);
    SiteTask::new(name, WebFormInterface::new(wire, schema, k, supports))
}

/// A live display stand-in: records a histogram snapshot every `every`
/// observations, like the demo's AJAX refresh.
struct LiveSnapshots {
    hist: Histogram,
    every: usize,
    seen: usize,
    snapshots: Vec<Histogram>,
}

impl LiveSnapshots {
    fn new(hist: Histogram, every: usize) -> Self {
        LiveSnapshots {
            hist,
            every,
            seen: 0,
            snapshots: Vec::new(),
        }
    }
}

impl SampleSink for LiveSnapshots {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.hist.add(&event.sample.row, event.sample.weight);
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.snapshots.push(self.hist.snapshot());
        }
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        unreachable!("single-threaded coop run never forks run-level sinks");
    }

    fn merge(&mut self, _other: Box<dyn SampleSink>) {
        unreachable!("single-threaded coop run never forks run-level sinks");
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

fn assert_bit_identical(a: &Histogram, b: &Histogram, what: &str) {
    assert_eq!(a.counts().len(), b.counts().len(), "{what}: arity");
    for (i, (x, y)) in a.counts().iter().zip(b.counts()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: bucket {i}");
    }
    assert_eq!(a.total().to_bits(), b.total().to_bits(), "{what}: total");
}

#[test]
fn coop_multi_site_live_snapshots_equal_posthoc_batch() {
    let make = AttrId(0);
    let cond_attr = AttrId(1);
    let price = MeasureId(0);
    let schema = {
        let db = hdsampler::simulated_site(50, 60, 1);
        db.schema().clone()
    };
    let target = 90;

    // Per-site live histograms ride the SiteTasks; a whole zoo of
    // run-level estimators observes the fleet-wide stream.
    let mut fleet = vec![
        site_task("alpha", 700, 11, 40).with_sink(Box::new(Histogram::new(&schema, make))),
        site_task("beta", 700, 22, 90).with_sink(Box::new(Histogram::new(&schema, make))),
        site_task("gamma", 700, 33, 60).with_sink(Box::new(Histogram::new(&schema, make))),
    ];

    let pred = |r: &Row| r.values[0] == 0;
    let n_total = 700.0;
    let mut stream = SampleSetSink::new();
    let mut hist = Histogram::new(&schema, make);
    let mut marginal = OnlineMarginal::new(&schema, make);
    let mut cube = DataCube::new(&schema, make, cond_attr);
    let mut prop = OnlineProportion::new(pred);
    let mut count = OnlineCount::new(n_total, pred);
    let mut avg = OnlineAvg::new(price, pred);
    let mut sum = OnlineSum::new(n_total, price, pred);
    let mut size = OnlineSize::new();
    let mut live = LiveSnapshots::new(Histogram::new(&schema, make), 25);

    let report = RunPlan::target(target)
        .walkers(6)
        .seed(2009)
        .driver(Driver::Coop { conns: Some(3) })
        .attach(&mut stream)
        .attach(&mut hist)
        .attach(&mut marginal)
        .attach(&mut cube)
        .attach(&mut prop)
        .attach(&mut count)
        .attach(&mut avg)
        .attach(&mut sum)
        .attach(&mut size)
        .attach(&mut live)
        .run(&mut fleet);

    assert_eq!(report.total_samples(), 3 * target);
    assert!(report.details.is_some(), "coop reports per-walker detail");

    // Per-site sinks: byte-identical to the batch build over that site's
    // collected samples, in acceptance order.
    for (task, site) in fleet.iter_mut().zip(&report.fleet.sites) {
        assert_eq!(site.stopped, StopReason::TargetReached);
        let sink = task.take_sink().expect("per-site sink attached");
        let online = sink
            .into_any()
            .downcast::<Histogram>()
            .expect("per-site sink is a histogram");
        let batch = Histogram::from_weighted(
            &schema,
            make,
            site.samples.samples().iter().map(|s| (&s.row, s.weight)),
        );
        assert_bit_identical(&online, &batch, &format!("site {}", site.name));
        assert_eq!(online.total() as usize, target);
    }

    // Run-level sinks: the SampleSetSink recorded the fleet's global
    // observation order; every online estimator's final state must be
    // byte-identical to the batch estimate over exactly that stream.
    let observed = stream.set();
    assert_eq!(observed.len(), 3 * target);
    {
        let mut site_keys: Vec<u64> = report
            .fleet
            .sites
            .iter()
            .flat_map(|s| s.samples.keys())
            .collect();
        let mut observed_keys = observed.keys();
        site_keys.sort_unstable();
        observed_keys.sort_unstable();
        assert_eq!(site_keys, observed_keys, "same multiset as the reports");
    }

    let batch_hist = Histogram::from_weighted(
        &schema,
        make,
        observed.samples().iter().map(|s| (&s.row, s.weight)),
    );
    assert_bit_identical(&hist, &batch_hist, "run-level histogram");

    let batch_marginal =
        MarginalEstimate::from_rows(&schema, make, observed.samples().iter().map(|s| &s.row));
    assert_eq!(marginal.snapshot(), batch_marginal, "marginal ≡ batch");

    let batch_cube = {
        let mut c = DataCube::new(&schema, make, cond_attr);
        for s in observed.samples() {
            c.add(&s.row, s.weight);
        }
        c
    };
    assert_eq!(cube, batch_cube, "cube ≡ batch");

    let est = Estimator::new(observed);
    for (online, batch, what) in [
        (prop.snapshot(), est.proportion(pred), "proportion"),
        (count.snapshot(), est.count(n_total, pred), "count"),
        (avg.snapshot(), est.avg(price, pred), "avg"),
        (sum.snapshot(), est.sum(n_total, price, pred), "sum"),
    ] {
        assert_eq!(online.n, batch.n, "{what}: n");
        assert_eq!(
            online.value.to_bits(),
            batch.value.to_bits(),
            "{what}: value"
        );
        assert_eq!(
            online.half_width.to_bits(),
            batch.half_width.to_bits(),
            "{what}: half width"
        );
    }

    assert_eq!(
        size.snapshot(),
        capture_recapture(observed.len(), observed.distinct()),
        "size ≡ batch capture–recapture"
    );

    // The live display took real mid-run snapshots, strictly growing,
    // and its final state is the batch state.
    assert!(
        live.snapshots.len() >= 2,
        "snapshots were taken mid-run: {}",
        live.snapshots.len()
    );
    for pair in live.snapshots.windows(2) {
        assert!(pair[0].total() < pair[1].total(), "snapshots grow");
    }
    assert_bit_identical(&live.hist, &batch_hist, "live display final state");
}

#[test]
fn run_plan_threaded_and_serial_agree_with_batch_too() {
    // The other two drivers through the same front door: run-level sinks
    // survive fork/merge (threaded) and direct observation (serial) with
    // the same final-state guarantee against their own recorded streams.
    for driver in [Driver::Threaded, Driver::Serial] {
        let schema = hdsampler::simulated_site(50, 60, 1).schema().clone();
        let make = AttrId(0);
        let mut fleet = vec![site_task("a", 400, 5, 30), site_task("b", 400, 6, 30)];
        let mut stream = SampleSetSink::new();
        let mut hist = Histogram::new(&schema, make);
        let report = RunPlan::target(40)
            .walkers(3)
            .seed(7)
            .driver(driver)
            .attach(&mut stream)
            .attach(&mut hist)
            .run(&mut fleet);
        assert_eq!(report.total_samples(), 80, "{driver:?}");
        let batch = Histogram::from_weighted(
            &schema,
            make,
            stream.set().samples().iter().map(|s| (&s.row, s.weight)),
        );
        // Unit-weight samples: fork/merge regrouping is still exact.
        assert_bit_identical(&hist, &batch, &format!("{driver:?}"));
    }
}
