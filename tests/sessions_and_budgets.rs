//! Operational behaviour: metered sites, kill switches, parallel
//! sessions, and scoped sampling — the §3.4 incremental workflow.

use hdsampler::prelude::*;
use std::sync::atomic::Ordering;
use std::sync::Arc;

fn metered_db(budget: u64) -> Arc<HiddenDb> {
    Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(4_000, 7),
            DbConfig::no_counts().with_k(150).with_budget(budget),
        )
        .build(),
    )
}

#[test]
fn budget_exhaustion_mid_session_keeps_partial_samples() {
    let db = metered_db(400);
    let mut sampler = HdsSampler::new(
        DirectExecutor::new(Arc::clone(&db)),
        SamplerConfig::seeded(1),
    )
    .unwrap();
    let session = SamplingSession::new(100_000);
    let outcome = session.run(&mut sampler, |_| {});
    assert_eq!(outcome.reason, StopReason::BudgetExhausted);
    assert!(!outcome.samples.is_empty(), "partial results usable");
    assert_eq!(db.queries_issued(), 400, "charged exactly the budget");
    // The partial sample is still analyzable.
    let est = Estimator::new(&outcome.samples).proportion(|r| r.values[0] == 0);
    assert!(est.value.is_finite());
}

#[test]
fn cache_stretches_a_fixed_budget() {
    // Same budget, cache on: strictly more samples before exhaustion.
    let db_plain = metered_db(400);
    let mut plain = HdsSampler::new(
        DirectExecutor::new(Arc::clone(&db_plain)),
        SamplerConfig::seeded(1),
    )
    .unwrap();
    let n_plain = SamplingSession::new(100_000)
        .run(&mut plain, |_| {})
        .samples
        .len();

    let db_cached = metered_db(400);
    let mut cached = HdsSampler::new(
        CachingExecutor::new(Arc::clone(&db_cached)),
        SamplerConfig::seeded(1),
    )
    .unwrap();
    let n_cached = SamplingSession::new(100_000)
        .run(&mut cached, |_| {})
        .samples
        .len();

    assert!(
        n_cached > 2 * n_plain,
        "history cache must stretch the budget: {n_cached} vs {n_plain}"
    );
}

#[test]
fn kill_switch_stops_a_running_session_from_another_thread() {
    let db = Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(4_000, 9),
            DbConfig::no_counts().with_k(150),
        )
        .build(),
    );
    let mut sampler = HdsSampler::new(
        CachingExecutor::new(Arc::clone(&db)),
        SamplerConfig::seeded(2),
    )
    .unwrap();
    let session = SamplingSession::new(usize::MAX);
    let kill = session.kill_switch();

    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        kill.store(true, Ordering::Relaxed);
    });
    let outcome = session.run(&mut sampler, |_| {});
    killer.join().unwrap();
    assert_eq!(outcome.reason, StopReason::Killed);
    assert!(!outcome.samples.is_empty(), "made progress before the kill");
}

#[test]
fn parallel_session_shares_one_cache_and_budget() {
    let db = metered_db(3_000);
    let exec = Arc::new(CachingExecutor::new(Arc::clone(&db)));
    let session = SamplingSession::new(200);
    let outcome = session.run_parallel(4, |w| {
        HdsSampler::new(Arc::clone(&exec), SamplerConfig::seeded(500 + w as u64)).unwrap()
    });
    assert_eq!(outcome.reason, StopReason::TargetReached);
    assert_eq!(outcome.samples.len(), 200);
    assert!(db.queries_issued() <= 3_000);
    for row in outcome.samples.rows() {
        assert!(db.oracle().tuple_by_key(row.key).is_some());
    }
}

#[test]
fn scoped_sampling_respects_figure3_style_bindings() {
    let db = Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(6_000, 3),
            DbConfig::no_counts().with_k(150),
        )
        .build(),
    );
    let schema = db.schema().clone();
    let scope = ConjunctiveQuery::from_named(&schema, [("condition", "used")]).unwrap();
    let cond = schema.attr_by_name("condition").unwrap();

    let mut sampler = HdsSampler::new(
        CachingExecutor::new(Arc::clone(&db)),
        SamplerConfig::seeded(4).with_scope(scope.clone()),
    )
    .unwrap();
    let outcome = SamplingSession::new(150).run(&mut sampler, |_| {});
    assert_eq!(outcome.reason, StopReason::TargetReached);
    for row in outcome.samples.rows() {
        assert_eq!(row.values[cond.index()], 1, "every sample is a used car");
    }

    // The scoped sample estimates the scoped population, not the whole DB.
    let price = schema.measure_by_name("price_usd").unwrap();
    let est = Estimator::new(&outcome.samples).avg(price, |_| true);
    let truth = db.oracle().avg(&scope, price).unwrap();
    assert!(
        (est.value - truth).abs() / truth < 0.25,
        "scoped AVG {} vs scoped truth {}",
        est.value,
        truth
    );
}

#[test]
fn drill_attribute_restriction_limits_queries_to_those_attributes() {
    let db = Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(2_000, 5),
            DbConfig::no_counts().with_k(50),
        )
        .build(),
    );
    let cfg = SamplerConfig::seeded(6).with_drill_attrs(["make", "year", "price"]);
    let mut sampler = HdsSampler::new(DirectExecutor::new(Arc::clone(&db)), cfg).unwrap();
    assert_eq!(sampler.drill_attrs().len(), 3);
    // Samples may exist or dead-end depending on k; just require progress
    // or a clean WalkLimit — never a panic.
    for _ in 0..20 {
        match sampler.next_sample() {
            Ok(s) => assert!(db.oracle().tuple_by_key(s.row.key).is_some()),
            Err(SamplerError::WalkLimit { .. }) => break,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
