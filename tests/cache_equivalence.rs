//! The history cache must be *semantically invisible*: a sampler with the
//! cache produces the byte-identical sample stream of an uncached sampler
//! with the same seed, while charging strictly fewer interface queries.

use hdsampler::prelude::*;
use std::sync::Arc;

fn build_db(seed: u64) -> Arc<HiddenDb> {
    Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(6_000, seed),
            DbConfig::no_counts().with_k(200),
        )
        .build(),
    )
}

#[test]
fn cached_and_uncached_sample_streams_are_identical() {
    let n_samples = 300;

    let db_plain = build_db(77);
    let mut plain = HdsSampler::new(
        DirectExecutor::new(Arc::clone(&db_plain)),
        SamplerConfig::seeded(3),
    )
    .unwrap();
    let plain_keys: Vec<u64> = (0..n_samples)
        .map(|_| plain.next_sample().unwrap().row.key)
        .collect();

    let db_cached = build_db(77);
    let mut cached = HdsSampler::new(
        CachingExecutor::new(Arc::clone(&db_cached)),
        SamplerConfig::seeded(3),
    )
    .unwrap();
    let cached_keys: Vec<u64> = (0..n_samples)
        .map(|_| cached.next_sample().unwrap().row.key)
        .collect();

    assert_eq!(
        plain_keys, cached_keys,
        "inference must not change any decision"
    );
    let (p, c) = (plain.stats(), cached.stats());
    assert_eq!(p.walks, c.walks);
    assert_eq!(p.requests, c.requests, "same logical request sequence");
    assert!(
        c.queries_issued < p.queries_issued / 2,
        "cache must absorb most charges: {} vs {}",
        c.queries_issued,
        p.queries_issued
    );
}

#[test]
fn cache_equivalence_under_scrambled_orders_and_slider() {
    // Scrambled orders maximize cross-walk containment inference; the
    // stream must still be identical.
    for slider in [0.0, 0.5, 1.0] {
        let cfg = || {
            SamplerConfig::seeded(11)
                .with_order(OrderStrategy::ScramblePerWalk)
                .with_slider(slider)
        };
        let db_a = build_db(5);
        let mut a = HdsSampler::new(DirectExecutor::new(Arc::clone(&db_a)), cfg()).unwrap();
        let db_b = build_db(5);
        let mut b = HdsSampler::new(CachingExecutor::new(Arc::clone(&db_b)), cfg()).unwrap();
        for i in 0..150 {
            let ka = a.next_sample().unwrap().row.key;
            let kb = b.next_sample().unwrap().row.key;
            assert_eq!(ka, kb, "divergence at sample {i} (slider {slider})");
        }
    }
}

#[test]
fn cache_equivalence_for_count_sampler() {
    let spec = WorkloadSpec {
        data: DataSpec::BooleanIid {
            m: 10,
            n: 400,
            p: 0.5,
        },
        db: DbConfig::exact_counts().with_k(8),
        seed: 9,
    };
    let db_a = Arc::new(spec.build());
    let db_b = Arc::new(spec.build());
    let mut a = CountWalkSampler::new(
        DirectExecutor::new(Arc::clone(&db_a)),
        SamplerConfig::seeded(2),
    )
    .unwrap();
    let mut b = CountWalkSampler::new(
        CachingExecutor::new(Arc::clone(&db_b)),
        SamplerConfig::seeded(2),
    )
    .unwrap();
    for _ in 0..200 {
        assert_eq!(
            a.next_sample().unwrap().row.key,
            b.next_sample().unwrap().row.key
        );
    }
    assert!(
        b.stats().queries_issued < a.stats().queries_issued,
        "cache must save count probes: {} vs {}",
        b.stats().queries_issued,
        a.stats().queries_issued
    );
}

#[test]
fn eviction_preserves_correctness_not_performance() {
    // A pathologically small cache evicts constantly; samples must still
    // match the uncached stream.
    let db_a = build_db(31);
    let mut a = HdsSampler::new(
        DirectExecutor::new(Arc::clone(&db_a)),
        SamplerConfig::seeded(6),
    )
    .unwrap();
    let db_b = build_db(31);
    let mut b = HdsSampler::new(
        CachingExecutor::with_capacity(Arc::clone(&db_b), 8),
        SamplerConfig::seeded(6),
    )
    .unwrap();
    for _ in 0..100 {
        assert_eq!(
            a.next_sample().unwrap().row.key,
            b.next_sample().unwrap().row.key
        );
    }
    assert!(
        b.executor().history_stats().evictions > 0,
        "tiny capacity must have forced evictions"
    );
}
