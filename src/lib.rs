//! # HDSampler
//!
//! A from-scratch reproduction of **"HDSampler: Revealing Data Behind Web
//! Form Interfaces"** (SIGMOD 2009 demo): draw (near-)uniform random
//! samples from a structured database that is only reachable through a
//! conjunctive web form with a top-k result limit, then answer aggregate
//! queries and plot marginal distributions from the samples.
//!
//! ## Crates
//!
//! | crate | contents |
//! |---|---|
//! | [`model`] | schemas, tuples, conjunctive queries, the `FormInterface` contract |
//! | [`hidden_db`] | the simulated hidden database engine (top-k, ranking, budgets, count noise) |
//! | [`workload`] | synthetic data: Google-Base-like vehicles, Boolean, Zipfian |
//! | [`core`] | the samplers: HIDDEN-DB-SAMPLER, BRUTE-FORCE, count-weighted; history cache; sessions |
//! | [`estimator`] | histograms, aggregates with CIs, skew metrics, size estimation |
//! | [`webform`] | URL/HTML round trip: form encoding, page rendering, scraping |
//!
//! ## Quick start
//!
//! ```
//! use hdsampler::prelude::*;
//!
//! // A simulated hidden car-listing site (compact schema, k = 250).
//! let db = hdsampler::simulated_site(5_000, 250, 42);
//!
//! // Draw 50 provably uniform samples through the form interface.
//! let mut sampler = hdsampler::uniform_sampler(&db, 7);
//! let samples: SampleSet =
//!     (0..50).map(|_| sampler.next_sample().expect("site is healthy")).collect();
//!
//! // Estimate the share of Japanese makes (the paper's §1 example) and
//! // validate against the simulated site's ground truth.
//! use hdsampler::workload::vehicles::{is_japanese_make, N_JAPANESE_MAKES};
//! let est = Estimator::new(&samples)
//!     .proportion(|row| is_japanese_make(row.values[0] as usize));
//! let truth: f64 =
//!     db.oracle().marginal(AttrId(0))[..N_JAPANESE_MAKES].iter().sum();
//! assert!((est.value - truth).abs() < 0.25, "estimate {} vs truth {truth}", est.value);
//! println!("Japanese share ≈ {:.1}% ± {:.1}%", est.value * 100.0, est.half_width * 100.0);
//! ```

pub use hdsampler_core as core;
pub use hdsampler_estimator as estimator;
pub use hdsampler_hidden_db as hidden_db;
pub use hdsampler_model as model;
pub use hdsampler_webform as webform;
pub use hdsampler_workload as workload;

use std::sync::Arc;

use hdsampler_core::{CachingExecutor, HdsSampler, SamplerConfig};
use hdsampler_hidden_db::HiddenDb;
use hdsampler_workload::{DbConfig, VehiclesSpec, WorkloadSpec};

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use hdsampler_core::{
        AcceptancePolicy, BruteForceSampler, CachingExecutor, CountWalkSampler, DirectExecutor,
        HdsSampler, NullSink, OrderStrategy, QueryExecutor, Sample, SampleEvent, SampleSet,
        SampleSetSink, SampleSink, Sampler, SamplerConfig, SamplerError, SamplingSession,
        SessionEvent, StopReason,
    };
    pub use hdsampler_estimator::{
        capture_recapture, fmt_stat, tv_distance, DataCube, Estimator, Histogram,
        MarginalComparison, MarginalEstimate, OnlineAvg, OnlineCount, OnlineFrequencies,
        OnlineMarginal, OnlineProportion, OnlineSize, OnlineSum,
    };
    pub use hdsampler_hidden_db::{CountMode, HiddenDb, QueryBudget, RankSpec};
    pub use hdsampler_model::{
        AttrId, Attribute, Classification, ConjunctiveQuery, FormInterface, MeasureId, Row, Schema,
        SchemaBuilder, TupleId,
    };
    pub use hdsampler_webform::{
        ChaosCounters, ChaosSpec, ChaosTransport, CoopDriver, Driver, FleetConfig,
        LatencyTransport, LocalSite, MultiSiteDriver, RetryPolicy, RunPlan, RunReport, SiteTask,
        Transport, WebFormInterface,
    };
    pub use hdsampler_workload::{DataSpec, DbConfig, VehiclesSpec, WorkloadSpec};
}

/// Build the demo's simulated Google Base Vehicles site: the **full**
/// 12-attribute schema behind a `k = 1000` interface with noisy count
/// banners and freshness ranking — the configuration §3.1 describes.
pub fn simulated_google_base(n: usize, seed: u64) -> Arc<HiddenDb> {
    Arc::new(WorkloadSpec::vehicles(VehiclesSpec::full(n, seed), DbConfig::default()).build())
}

/// Build a compact simulated vehicle site with a configurable `k` —
/// the 6-attribute variant whose domain product is small enough for
/// brute-force validation (§3.4 / §4 backup plan).
pub fn simulated_site(n: usize, k: usize, seed: u64) -> Arc<HiddenDb> {
    Arc::new(
        WorkloadSpec::vehicles(
            VehiclesSpec::compact(n, seed),
            DbConfig::exact_counts().with_k(k),
        )
        .build(),
    )
}

/// A provably uniform (`C = 1`) HIDDEN-DB-SAMPLER over a shared database,
/// with the history cache enabled (the full §3 configuration).
pub fn uniform_sampler(
    db: &Arc<HiddenDb>,
    seed: u64,
) -> HdsSampler<CachingExecutor<Arc<HiddenDb>>> {
    HdsSampler::new(
        CachingExecutor::new(Arc::clone(db)),
        SamplerConfig::seeded(seed),
    )
    .expect("default configuration is valid for any schema")
}

/// A slider-configured HIDDEN-DB-SAMPLER (`0.0` = lowest skew, `1.0` =
/// highest efficiency) — the demo's §3.1 performance/accuracy control.
pub fn slider_sampler(
    db: &Arc<HiddenDb>,
    slider: f64,
    seed: u64,
) -> HdsSampler<CachingExecutor<Arc<HiddenDb>>> {
    HdsSampler::new(
        CachingExecutor::new(Arc::clone(db)),
        SamplerConfig::seeded(seed).with_slider(slider),
    )
    .expect("default configuration is valid for any schema")
}

/// Wrap a shared database in the full web stack — URL encoding, HTML
/// rendering, scraping — and return the scraper-side interface. Samplers
/// running on it exercise the identical pipeline a live scraper would.
pub fn webform_stack(
    db: &Arc<HiddenDb>,
) -> webform::WebFormInterface<webform::LocalSite<Arc<HiddenDb>>> {
    use hdsampler_model::FormInterface as _;
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let supports = db.supports_count();
    let site = webform::LocalSite::new(Arc::clone(db), Arc::clone(&schema));
    webform::WebFormInterface::new(site, schema, k, supports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn facade_builders_work_together() {
        let db = simulated_site(1_000, 100, 3);
        let mut s = uniform_sampler(&db, 5);
        let sample = s.next_sample().unwrap();
        assert!(db.oracle().tuple_by_key(sample.row.key).is_some());

        let mut fast = slider_sampler(&db, 1.0, 5);
        fast.next_sample().unwrap();
        assert!(fast.c_factor() > s.c_factor());
    }

    #[test]
    fn webform_stack_serves_samplers() {
        let db = simulated_site(500, 50, 9);
        let iface = webform_stack(&db);
        let mut s = HdsSampler::new(DirectExecutor::new(&iface), SamplerConfig::seeded(1)).unwrap();
        let sample = s.next_sample().unwrap();
        assert!(db.oracle().tuple_by_key(sample.row.key).is_some());
    }

    #[test]
    fn google_base_configuration() {
        let db = simulated_google_base(2_000, 1);
        assert_eq!(db.result_limit(), 1000);
        assert!(db.supports_count(), "noisy banner present");
        assert_eq!(db.schema().arity(), 12);
    }
}
