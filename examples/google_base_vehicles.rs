//! The demo scenario (paper §3.1, §4): HDSampler pointed at a simulated
//! Google Base Vehicles database.
//!
//! ```bash
//! cargo run --release --example google_base_vehicles
//! ```
//!
//! A 60 000-listing inventory with the full 12-attribute schema sits
//! behind a `k = 1000` interface that ranks by freshness and prints noisy
//! count banners, exactly as §3.1 describes. The example first shows why
//! scraping the first page is hopeless (the ranking bias), then runs an
//! incremental HDSampler session with a mid-range efficiency/skew slider
//! and reveals the marginal distributions "in a matter of minutes" of
//! simulated wall-clock.

use hdsampler::prelude::*;

fn main() {
    let db = hdsampler::simulated_google_base(60_000, 2009);
    let schema = db.schema().clone();
    println!(
        "Google Base Vehicles (simulated): {} listings, k = {}, noisy counts\n",
        db.n_tuples(),
        db.result_limit()
    );

    // --- Naive top-k scraping is biased ------------------------------
    let year = schema.attr_by_name("year").unwrap();
    let first_page = db.execute(&ConjunctiveQuery::empty()).expect("site is up");
    let page_hist = Histogram::from_rows(&schema, year, first_page.rows.iter());
    let truth_year = db.oracle().marginal(year);
    let tv = tv_distance(&page_hist.proportions(), &truth_year);
    println!(
        "Naive 'scrape the first page' baseline: TV distance of the year \
         distribution vs truth = {tv:.3} (the ranking favours new cars)\n"
    );

    // --- HDSampler session -------------------------------------------
    let slider = 0.35; // closer to 'lowest skew' than 'highest efficiency'
    let mut sampler = hdsampler::slider_sampler(&db, slider, 77);
    println!(
        "HDSampler: slider = {slider} → scaling factor C = {:.1} over B = {:.2e}",
        sampler.c_factor(),
        sampler.domain_product()
    );

    let session = SamplingSession::new(600);
    let outcome = session.run(&mut sampler, |event| {
        if let SessionEvent::SampleAccepted {
            collected, target, ..
        } = event
        {
            if collected % 150 == 0 {
                println!("  … {collected}/{target}");
            }
        }
    });
    let stats = outcome.stats;
    println!(
        "\n{} samples | {} queries issued | {:.1} q/sample | {:.0}% answered from history\n",
        outcome.samples.len(),
        stats.queries_issued,
        stats.queries_per_sample(),
        stats.savings_rate() * 100.0,
    );

    // At ~150 ms per HTTP round trip, that corresponds to:
    let minutes = stats.queries_issued as f64 * 0.150 / 60.0;
    println!(
        "At 150 ms/query this is ≈ {minutes:.1} minutes of wall-clock — 'a matter of minutes'.\n"
    );

    // --- Figure 4: histograms on the samples --------------------------
    for attr_name in ["make", "year", "price", "condition"] {
        let attr = schema.attr_by_name(attr_name).unwrap();
        let hist = Histogram::from_rows(&schema, attr, outcome.samples.rows());
        let cmp = MarginalComparison::new(
            &schema,
            attr,
            hist.proportions(),
            db.oracle().marginal(attr),
        );
        println!("{}", cmp.render(0.03));
    }

    // --- The §1 aggregate --------------------------------------------
    use hdsampler::workload::vehicles::{is_japanese_make, N_JAPANESE_MAKES};
    let est =
        Estimator::new(&outcome.samples).proportion(|r| is_japanese_make(r.values[0] as usize));
    let make = schema.attr_by_name("make").unwrap();
    let truth: f64 = db.oracle().marginal(make)[..N_JAPANESE_MAKES].iter().sum();
    println!(
        "Percentage of Japanese cars: estimated {:.1}% ± {:.1}%  (truth {:.1}%)",
        est.value * 100.0,
        est.half_width * 100.0,
        truth * 100.0
    );
}
