//! The efficiency ↔ skew slider (paper §3.1): what each position buys.
//!
//! ```bash
//! cargo run --release --example tradeoff_explorer
//! ```
//!
//! Sweeps the demo's slider from "lowest skew" (0.0) to "highest
//! efficiency" (1.0) and reports, for each position: the resolved scaling
//! factor C, walks and interface queries per sample, and the skew of the
//! resulting marginal (TV distance vs ground truth at equal sample
//! counts).
//!
//! The sweep runs **without** the history cache so that the numbers show
//! the *algorithmic* cost the slider controls; the cache is a separate,
//! orthogonal optimization (see the `exp_history_savings` experiment).

use hdsampler::prelude::*;

fn main() {
    let db = hdsampler::simulated_site(10_000, 250, 5);
    let schema = db.schema().clone();
    let year = schema.attr_by_name("year").unwrap();
    let truth = db.oracle().marginal(year);
    let per_position = 400;

    println!(
        "{:>8} {:>12} {:>14} {:>16} {:>12}",
        "slider", "C factor", "walks/sample", "queries/sample", "TV(year)"
    );
    for position in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0] {
        // Uncached executor: every request hits the site.
        let mut sampler = HdsSampler::new(
            DirectExecutor::new(std::sync::Arc::clone(&db)),
            SamplerConfig::seeded(1234).with_slider(position),
        )
        .expect("valid configuration");
        let samples = SamplingSession::new(per_position)
            .run(&mut sampler, |_| {})
            .samples;
        let hist = Histogram::from_rows(&schema, year, samples.rows());
        let tv = tv_distance(&hist.proportions(), &truth);
        let stats = sampler.stats();
        println!(
            "{position:>8.1} {:>12.1} {:>14.2} {:>16.2} {:>12.4}",
            sampler.c_factor(),
            stats.walks_per_sample(),
            stats.queries_per_sample(),
            tv
        );
    }
    println!(
        "\nLeft end: uniform but expensive (rejections burn walks). Right \
         end: cheap but the walk's shallow-tuple bias shows up as growing \
         TV distance — the trade-off the demo exposes as a slider."
    );
}
