//! An analyst's workflow (paper §1, §3.4): approximate aggregates with
//! confidence intervals from a few hundred samples.
//!
//! ```bash
//! cargo run --release --example aggregate_analyst
//! ```
//!
//! Demonstrates COUNT / SUM / AVG / proportion answering over client-side
//! predicates the conjunctive interface itself could never express,
//! database-size estimation by capture–recapture, and a small data cube —
//! every validation number comes from the simulation's oracle.

use hdsampler::prelude::*;
use hdsampler::workload::vehicles::is_japanese_make;

fn main() {
    let db = hdsampler::simulated_site(4_000, 100, 11);
    let schema = db.schema().clone();
    let oracle = db.oracle();

    let mut sampler = hdsampler::uniform_sampler(&db, 23);
    let samples = SamplingSession::new(800).run(&mut sampler, |_| {}).samples;
    println!("{} uniform samples drawn\n", samples.len());
    let est = Estimator::new(&samples);

    // --- Proportion: Japanese share (paper's own example) -------------
    let japanese = est.proportion(|r| is_japanese_make(r.values[0] as usize));
    let make = schema.attr_by_name("make").unwrap();
    let truth: f64 = oracle.marginal(make)[..6].iter().sum();
    println!(
        "share of Japanese cars      {:6.2}% ± {:4.2}%   (truth {:6.2}%, covered: {})",
        japanese.value * 100.0,
        japanese.half_width * 100.0,
        truth * 100.0,
        japanese.covers(truth)
    );

    // --- AVG over a client-side predicate ------------------------------
    let price = schema.measure_by_name("price_usd").unwrap();
    let manual = schema.attr_by_name("transmission").unwrap();
    let avg_manual = est.avg(price, |r| r.values[manual.index()] == 1);
    let truth_avg = oracle
        .avg(
            &ConjunctiveQuery::from_named(&schema, [("transmission", "manual")]).unwrap(),
            price,
        )
        .expect("manual cars exist");
    println!(
        "AVG price of manual cars    ${:8.0} ± {:5.0}   (truth ${:8.0}, covered: {})",
        avg_manual.value,
        avg_manual.half_width,
        truth_avg,
        avg_manual.covers(truth_avg)
    );

    // --- Database size via capture–recapture ---------------------------
    let n_est = capture_recapture(samples.len(), samples.distinct());
    match n_est {
        Some(n) => println!(
            "estimated database size     {:8.0}            (truth {:8})",
            n,
            oracle.size()
        ),
        None => println!(
            "estimated database size     no collisions yet — N ≳ {}",
            samples.len() * samples.len() / 2
        ),
    }

    // --- COUNT/SUM using the size estimate -----------------------------
    let n_for_scaling = n_est.unwrap_or(oracle.size() as f64);
    let cheap = est.count(n_for_scaling, |r| r.measures[0] < 8_000.0);
    let truth_cheap = (0..oracle.size() as u32)
        .filter(|&t| oracle.row(TupleId(t)).measures[0] < 8_000.0)
        .count();
    println!(
        "COUNT(price < $8k)          {:8.0} ± {:5.0}   (truth {:8})",
        cheap.value, cheap.half_width, truth_cheap
    );

    let total_value = est.sum(n_for_scaling, price, |_| true);
    let truth_sum = oracle.sum(&ConjunctiveQuery::empty(), price);
    println!(
        "SUM(price) over inventory   ${:11.0} ± {:9.0}  (truth ${:11.0})",
        total_value.value, total_value.half_width, truth_sum
    );

    // --- A small data cube ---------------------------------------------
    let cond = schema.attr_by_name("condition").unwrap();
    let trans = schema.attr_by_name("transmission").unwrap();
    let cube = DataCube::from_rows(&schema, cond, trans, samples.rows());
    println!(
        "\ncondition × transmission (joint % of inventory):\n{}",
        cube.render()
    );
}
