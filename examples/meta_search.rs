//! A third-party application (paper §1): a meta-search engine deciding
//! "on the quality and coverage of the data available at different hidden
//! web sources".
//!
//! ```bash
//! cargo run --release --example meta_search
//! ```
//!
//! Two competing car-listing sites expose only their forms. The
//! meta-search engine samples both (a few hundred queries each), then
//! compares inventory size, price level, Japanese-make coverage and
//! condition mix to decide where to route user queries for
//! "cheap used Japanese cars".

use hdsampler::prelude::*;
use hdsampler::workload::vehicles::is_japanese_make;
use std::sync::Arc;

struct SiteReport {
    name: &'static str,
    size_estimate: Option<f64>,
    japanese_share: f64,
    avg_price: f64,
    used_share: f64,
    queries_spent: u64,
}

fn profile(name: &'static str, db: &Arc<HiddenDb>, seed: u64) -> SiteReport {
    let mut sampler = hdsampler::uniform_sampler(db, seed);
    let samples = SamplingSession::new(500).run(&mut sampler, |_| {}).samples;
    let schema = db.schema();
    let est = Estimator::new(&samples);
    let price = schema.measure_by_name("price_usd").unwrap();
    let cond = schema.attr_by_name("condition").unwrap();
    SiteReport {
        name,
        size_estimate: capture_recapture(samples.len(), samples.distinct()),
        japanese_share: est
            .proportion(|r| is_japanese_make(r.values[0] as usize))
            .value,
        avg_price: est.avg(price, |_| true).value,
        used_share: est.proportion(|r| r.values[cond.index()] == 1).value,
        queries_spent: sampler.stats().queries_issued,
    }
}

fn main() {
    // Site A: a big-box dealer network — large, newer, pricier inventory.
    let site_a = hdsampler::simulated_site(6_000, 100, 1001);
    // Site B: a smaller used-car marketplace (different seed ⇒ different
    // inventory mix; smaller stock).
    let site_b = hdsampler::simulated_site(2_500, 50, 2002);

    let reports = [
        profile("MegaMotors", &site_a, 1),
        profile("ThriftyAuto", &site_b, 2),
    ];

    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "site", "est. size", "japanese", "avg $", "used", "queries"
    );
    for r in &reports {
        println!(
            "{:>12} {:>12} {:>9.1}% {:>10.0} {:>9.1}% {:>9}",
            r.name,
            r.size_estimate
                .map_or("n/a".to_string(), |n| format!("{n:.0}")),
            r.japanese_share * 100.0,
            r.avg_price,
            r.used_share * 100.0,
            r.queries_spent,
        );
    }

    // Routing decision for "cheap used Japanese cars": score by
    // coverage × affordability.
    let score = |r: &SiteReport| {
        let size = r.size_estimate.unwrap_or(1_000.0);
        size * r.japanese_share * r.used_share / r.avg_price
    };
    let best = reports
        .iter()
        .max_by(|a, b| score(a).partial_cmp(&score(b)).unwrap())
        .unwrap();
    println!(
        "\nMeta-search routing decision for 'cheap used Japanese cars': {}",
        best.name
    );

    // Ground truth check, available only because the sites are simulated:
    for (db, r) in [(&site_a, &reports[0]), (&site_b, &reports[1])] {
        println!(
            "  {}: true size {}, sampled estimate {}",
            r.name,
            db.n_tuples(),
            r.size_estimate.map_or("n/a".into(), |n| format!("{n:.0}")),
        );
    }
}
