//! Live dashboard: the demo's headline AJAX behavior — histograms that
//! refresh *while the fleet is still sampling* — driven through the
//! `RunPlan` front door and the `SampleSink` streaming observer API.
//!
//! ```bash
//! cargo run --release --example live_dashboard
//! ```
//!
//! Two simulated vehicle sites are driven by the cooperative driver (one
//! OS thread, walkers pipelined over shared connections). A custom sink
//! re-renders the fleet-wide `make` histogram every 40 samples, exactly
//! as the original demo's browser did; at the end, the live state is
//! compared bit-for-bit against the post-hoc batch build — the streaming
//! Output Module's equivalence guarantee.

use std::any::Any;
use std::sync::Arc;

use hdsampler::prelude::*;

type Wire = LatencyTransport<LocalSite<Arc<HiddenDb>>>;

fn site(name: &str, n: usize, seed: u64, latency_ms: u64) -> SiteTask<Wire> {
    let db = hdsampler::simulated_site(n, 100, seed);
    let schema = Arc::new(db.schema().clone());
    let k = db.result_limit();
    let supports = db.supports_count();
    let wire = LatencyTransport::new(
        LocalSite::new(Arc::clone(&db), Arc::clone(&schema)),
        latency_ms,
    );
    SiteTask::new(name, WebFormInterface::new(wire, schema, k, supports))
}

/// The "browser": re-renders the live histogram every `every` samples.
struct Dashboard {
    hist: Histogram,
    every: usize,
    seen: usize,
    renders: usize,
}

impl SampleSink for Dashboard {
    fn observe(&mut self, event: &SampleEvent<'_>) {
        self.hist.add(&event.sample.row, event.sample.weight);
        self.seen += 1;
        if self.seen.is_multiple_of(self.every) {
            self.renders += 1;
            println!(
                "── live: {} samples in (site {} contributed last) ──",
                self.seen, event.site
            );
            println!("{}", self.hist.snapshot().render(32));
        }
    }

    fn fork(&self) -> Box<dyn SampleSink> {
        // The coop driver is single-threaded and never forks run-level
        // sinks; a fresh dashboard satisfies the contract anyway.
        Box::new(Dashboard {
            hist: Histogram::new_like_empty(&self.hist),
            every: self.every,
            seen: 0,
            renders: 0,
        })
    }

    fn merge(&mut self, _other: Box<dyn SampleSink>) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Small helper: an empty histogram with the same attribute/labels.
trait EmptyLike {
    fn new_like_empty(h: &Histogram) -> Histogram;
}

impl EmptyLike for Histogram {
    fn new_like_empty(h: &Histogram) -> Histogram {
        *SampleSink::fork(h)
            .into_any()
            .downcast::<Histogram>()
            .expect("a histogram forks into a histogram")
    }
}

fn main() {
    let schema = hdsampler::simulated_site(10, 100, 7).schema().clone();
    let make = schema.attr_by_name("make").expect("vehicles have makes");

    let mut fleet = vec![
        site("dealer-a", 4_000, 7, 60),
        site("dealer-b", 4_000, 9, 120),
    ];
    let mut dashboard = Dashboard {
        hist: Histogram::new(&schema, make),
        every: 40,
        seen: 0,
        renders: 0,
    };
    let mut stream = SampleSetSink::new();

    println!("live dashboard: 2 sites × 8 cooperative walkers on one thread\n");
    let report = RunPlan::target(120)
        .walkers(8)
        .seed(2009)
        .driver(Driver::Coop { conns: Some(4) })
        .attach(&mut dashboard)
        .attach(&mut stream)
        .run(&mut fleet);

    println!(
        "collected {} samples over {} sites in {:.1} virtual s ({} live re-renders)",
        report.total_samples(),
        report.fleet.sites.len(),
        report.fleet.fleet_elapsed_ms as f64 / 1_000.0,
        dashboard.renders,
    );
    assert!(dashboard.renders >= 2, "the dashboard refreshed mid-run");

    // The streaming guarantee: final live state ≡ post-hoc batch build.
    let batch = Histogram::from_weighted(
        &schema,
        make,
        stream.set().samples().iter().map(|s| (&s.row, s.weight)),
    );
    assert_eq!(dashboard.hist, batch, "live ≡ batch, bit for bit");
    println!("\nfinal (batch-verified) histogram:\n{}", batch.render(40));
}
