//! The full scraping pipeline (paper §3.5's web stack, simulated): the
//! sampler never touches the database — every query travels as a GET
//! request and every answer is scraped off an HTML page.
//!
//! ```bash
//! cargo run --release --example webform_scraping
//! ```

use hdsampler::prelude::*;
use hdsampler::webform::Transport;

fn main() {
    let db = hdsampler::simulated_site(5_000, 100, 8);
    let schema = std::sync::Arc::new(db.schema().clone());

    // The site renders its search form (Figure 3's machine counterpart)…
    let iface = hdsampler::webform_stack(&db);
    let site_form = hdsampler::webform::WebForm::new(std::sync::Arc::clone(&schema), "/search");
    let form_html = site_form.render_html();
    println!(
        "The site's search form ({} lines of HTML, one <select> per attribute):\n",
        form_html.lines().count()
    );
    for line in form_html.lines().take(8) {
        println!("  {line}");
    }
    println!("  …\n");

    // …and one raw results page, as the scraper sees it:
    let example_query =
        ConjunctiveQuery::from_named(&schema, [("make", "Toyota"), ("condition", "new")]).unwrap();
    let path = site_form.request_path(&example_query);
    println!("GET {path}\n");
    let page = iface.transport().fetch(&path).expect("site is up");
    for line in page.lines().take(6) {
        println!("  {line}");
    }
    println!("  …\n");

    // A sampler on top of the scraping stack, with latency accounting.
    let latency = LatencyTransport::new(iface.transport(), 150);
    let scraper = WebFormInterface::new(
        &latency,
        std::sync::Arc::clone(&schema),
        db.result_limit(),
        db.supports_count(),
    );
    let mut sampler = HdsSampler::new(
        CachingExecutor::new(&scraper),
        SamplerConfig::seeded(3).with_slider(0.3),
    )
    .unwrap();
    let samples = SamplingSession::new(150).run(&mut sampler, |_| {}).samples;
    let stats = sampler.stats();
    println!(
        "{} samples scraped via {} page fetches — {:.1} s of simulated network time",
        samples.len(),
        stats.queries_issued,
        latency.virtual_elapsed_ms() as f64 / 1000.0
    );

    // Verify the string round trip corrupted nothing.
    let ok = samples
        .rows()
        .all(|row| db.oracle().tuple_by_key(row.key).is_some());
    println!("every scraped row resolves to a genuine tuple: {ok}");
}
