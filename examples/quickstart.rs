//! Quickstart: sample a simulated hidden database and look at a marginal.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small simulated vehicle-listing site behind a top-k form,
//! draws 400 provably uniform samples with HIDDEN-DB-SAMPLER, and prints
//! the sampled `make` histogram next to the ground truth that only the
//! simulation can reveal.

use hdsampler::prelude::*;

fn main() {
    // A hidden site: 5 000 listings, at most k = 250 shown per query.
    let db = hdsampler::simulated_site(5_000, 250, 42);
    let schema = db.schema().clone();
    println!(
        "Simulated hidden database: {} listings behind a top-{} conjunctive form",
        db.n_tuples(),
        db.result_limit()
    );

    // Provably uniform sampler (C = 1) with the history cache enabled.
    let mut sampler = hdsampler::uniform_sampler(&db, 7);
    let session = SamplingSession::new(400);
    let outcome = session.run(&mut sampler, |event| {
        if let SessionEvent::SampleAccepted {
            collected, target, ..
        } = event
        {
            if collected % 100 == 0 {
                println!("  … {collected}/{target} samples");
            }
        }
    });
    println!(
        "Collected {} samples with {} interface queries ({:.1} queries/sample, {:.0}% served from cache)\n",
        outcome.samples.len(),
        outcome.stats.queries_issued,
        outcome.stats.queries_per_sample(),
        outcome.stats.savings_rate() * 100.0,
    );

    // The sampled marginal distribution of `make` …
    let make = schema.attr_by_name("make").expect("vehicles have makes");
    let hist = Histogram::from_rows(&schema, make, outcome.samples.rows());
    println!("{}", hist.render(40));

    // … compared against ground truth (only possible on a simulated site).
    let comparison = MarginalComparison::new(
        &schema,
        make,
        hist.proportions(),
        db.oracle().marginal(make),
    );
    println!("{}", comparison.render(0.02));
}
